"""Tests for the on-disk MRBG-Store: chunks, index, windows, batches,
persistence, compaction and metrics."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StoreClosedError, StoreError
from repro.common.kvpair import Op
from repro.mrbgraph.chunk import chunk_size, decode_chunk, encode_chunk
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.store import MRBGStore
from repro.mrbgraph.windows import (
    IndexOnlyPolicy,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    SingleFixedWindowPolicy,
)


def make_store(tmp_path, policy=None, **kwargs) -> MRBGStore:
    return MRBGStore(str(tmp_path / "store"), policy=policy, **kwargs)


def build_chunks(n, edges_per_chunk=3):
    return [
        (k2, [Edge(mk, float(k2 * 10 + mk)) for mk in range(edges_per_chunk)])
        for k2 in range(n)
    ]


class TestChunkCodec:
    def test_roundtrip(self):
        entries = [Edge(1, "a"), Edge(2, 3.5)]
        raw = encode_chunk("key", entries)
        k2, decoded, consumed = decode_chunk(raw)
        assert k2 == "key"
        assert decoded == entries
        assert consumed == len(raw)

    def test_chunk_size_matches(self):
        entries = [Edge(1, (2, 3))]
        assert chunk_size("k", entries) == len(encode_chunk("k", entries))

    def test_empty_chunk(self):
        raw = encode_chunk(5, [])
        k2, decoded, _ = decode_chunk(raw)
        assert k2 == 5
        assert decoded == []


class TestBuildAndGet:
    def test_build_then_get(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(20))
        assert len(store) == 20
        assert store.get_chunk(7) == [Edge(0, 70.0), Edge(1, 71.0), Edge(2, 72.0)]
        store.close()

    def test_get_missing_returns_none(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(3))
        assert store.get_chunk(99) is None
        store.close()

    def test_keys_sorted(self, tmp_path):
        store = make_store(tmp_path)
        store.build([(k, [Edge(0, k)]) for k in [5, 1, 3]])
        assert store.keys() == [1, 3, 5]
        store.close()

    def test_real_file_on_disk(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        path = os.path.join(store.directory, "mrbg.dat")
        assert os.path.getsize(path) == store.file_size > 0
        store.close()

    def test_contains(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(3))
        assert 1 in store
        assert 99 not in store
        store.close()


class TestMergeDelta:
    def test_merge_updates_and_deletes(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(5))
        delta = [
            (1, [DeltaEdge(0, 999.0, Op.INSERT)]),
            (2, [DeltaEdge(mk, None, Op.DELETE) for mk in range(3)]),
        ]
        merged = dict(store.merge_delta(delta))
        assert merged[1][0] == Edge(0, 999.0)
        assert merged[2] == []
        assert store.get_chunk(2) is None
        assert store.get_chunk(1)[0].value == 999.0
        store.close()

    def test_merge_creates_new_chunk(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        list(store.merge_delta([(77, [DeltaEdge(1, "new", Op.INSERT)])]))
        assert store.get_chunk(77) == [Edge(1, "new")]
        store.close()

    def test_each_merge_appends_a_batch(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        assert store.num_batches == 1
        for generation in range(3):
            list(store.merge_delta(
                [(k, [DeltaEdge(0, float(generation), Op.INSERT)])
                 for k in range(0, 10, 2)]
            ))
        assert store.num_batches == 4
        # Old versions remain until compaction: file exceeds live bytes.
        assert store.file_size > store.live_bytes()
        store.close()

    def test_latest_version_wins_across_batches(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(4))
        list(store.merge_delta([(1, [DeltaEdge(0, "v2", Op.INSERT)])]))
        list(store.merge_delta([(1, [DeltaEdge(0, "v3", Op.INSERT)])]))
        assert store.get_chunk(1)[0].value == "v3"
        store.close()

    def test_nested_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.begin_merge([0])
        with pytest.raises(StoreError):
            store.begin_merge([1])
        store.end_merge()
        store.close()

    def test_put_outside_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(StoreError):
            store.put_chunk(1, [])
        store.close()


class TestWindowPolicies:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            IndexOnlyPolicy,
            lambda: SingleFixedWindowPolicy(window_size=4096),
            lambda: MultiFixedWindowPolicy(window_size=2048),
            MultiDynamicWindowPolicy,
        ],
    )
    def test_all_policies_read_correctly(self, tmp_path, policy_factory):
        store = make_store(tmp_path, policy=policy_factory())
        store.build(build_chunks(50))
        list(store.merge_delta(
            [(k, [DeltaEdge(0, -1.0, Op.INSERT)]) for k in range(0, 50, 3)]
        ))
        # Every chunk readable and correct regardless of policy.
        for k in range(50):
            chunk = store.get_chunk(k)
            expected_first = -1.0 if k % 3 == 0 else float(k * 10)
            assert chunk[0].value == expected_first
        store.close()

    def test_index_only_issues_most_reads(self, tmp_path):
        def count_reads(policy):
            store = MRBGStore(str(tmp_path / repr(policy.__class__.__name__)),
                              policy=policy)
            store.build(build_chunks(200))
            keys = list(range(0, 200, 2))
            store.begin_merge(keys)
            for k in keys:
                store.get_chunk(k)
            store.end_merge()
            reads = store.metrics.io_reads
            store.close()
            return reads

        assert count_reads(IndexOnlyPolicy()) > count_reads(
            MultiDynamicWindowPolicy()
        )

    def test_dynamic_window_prefetch_hits_cache(self, tmp_path):
        store = make_store(tmp_path, policy=MultiDynamicWindowPolicy())
        store.build(build_chunks(100))
        keys = list(range(100))
        store.begin_merge(keys)
        for k in keys:
            store.get_chunk(k)
        store.end_merge()
        assert store.metrics.cache_hits > store.metrics.cache_misses
        store.close()


class TestPersistence:
    def test_save_and_reopen(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        list(store.merge_delta([(3, [DeltaEdge(0, "updated", Op.INSERT)])]))
        store.save_index()
        store.close()

        reopened = MRBGStore.open(str(tmp_path / "store"))
        assert len(reopened) == 10
        assert reopened.get_chunk(3)[0].value == "updated"
        assert reopened.num_batches == 2
        reopened.close()

    def test_closed_store_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.close()
        with pytest.raises(StoreClosedError):
            store.get_chunk(1)
        store.close()  # second close is a no-op


class TestCompaction:
    def test_compact_preserves_content(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(30))
        for generation in range(4):
            list(store.merge_delta(
                [(k, [DeltaEdge(0, float(generation), Op.INSERT)])
                 for k in range(0, 30, 2)]
            ))
        before = {k: store.get_chunk(k) for k in store.keys()}
        old_size = store.file_size
        store.compact()
        assert store.num_batches == 1
        assert store.file_size < old_size
        assert store.file_size == store.live_bytes()
        after = {k: store.get_chunk(k) for k in store.keys()}
        assert before == after
        store.close()

    def test_compact_during_session_raises(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(2))
        store.begin_merge([0])
        with pytest.raises(StoreError):
            store.compact()
        store.end_merge()
        store.close()

    def test_compact_tracked_separately(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        read_before = store.metrics.read_time_s
        store.compact()
        assert store.metrics.compactions == 1
        assert store.metrics.compact_time_s > 0
        # Compaction time never leaks into read/write time.
        assert store.metrics.read_time_s == read_before
        store.close()


class TestMetrics:
    def test_bytes_read_measured(self, tmp_path):
        store = make_store(tmp_path, policy=IndexOnlyPolicy())
        store.build(build_chunks(10))
        store.metrics.reset()
        store.begin_merge([4])
        chunk_bytes = chunk_size(4, store.get_chunk(4))
        store.end_merge()
        assert store.metrics.bytes_read == chunk_bytes
        assert store.metrics.io_reads == 1
        store.close()

    def test_snapshot_since(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        snap = store.metrics.snapshot()
        list(store.merge_delta([(1, [DeltaEdge(0, 1.0, Op.INSERT)])]))
        delta = store.metrics.since(snap)
        assert delta.io_reads >= 1
        assert delta.bytes_written > 0
        store.close()


# Property test: an arbitrary interleaving of merges matches a dict model.
_delta_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),   # k2
        st.integers(min_value=0, max_value=4),   # mk
        st.integers(min_value=-100, max_value=100),  # value
        st.booleans(),  # delete?
    ),
    min_size=1,
    max_size=30,
)


class TestStoreModelProperty:
    @given(st.lists(_delta_ops, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merges_match_dict_model(self, tmp_path_factory, batches):
        tmp = tmp_path_factory.mktemp("store-prop")
        store = MRBGStore(str(tmp))
        store.build([(k, [Edge(0, 0)]) for k in range(10)])
        model = {k: {0: 0} for k in range(10)}

        for batch in batches:
            grouped = {}
            for k2, mk, value, is_delete in batch:
                grouped.setdefault(k2, []).append(
                    DeltaEdge(mk, None if is_delete else value,
                              Op.DELETE if is_delete else Op.INSERT)
                )
                chunk = model.setdefault(k2, {})
                if is_delete:
                    chunk.pop(mk, None)
                else:
                    chunk[mk] = value
            list(store.merge_delta(sorted(grouped.items())))

        for k in range(10):
            expected = model.get(k, {})
            actual = store.get_chunk(k)
            if not expected:
                assert actual is None or actual == []
            else:
                assert actual == [Edge(mk, expected[mk]) for mk in sorted(expected)]
        store.close()


GOLDEN_STORE = os.path.join(os.path.dirname(__file__), "golden", "mrbg_store")


class TestGoldenStore:
    """A store written by the pre-overhaul codec (legacy index layout and
    generic chunk encodings) must reopen and decode identically."""

    def test_golden_store_decodes_identically(self):
        store = MRBGStore.open(GOLDEN_STORE)
        try:
            assert store.num_batches == 2
            assert store.get_chunk(1) == [Edge(0, 0.5), Edge(1, -9.75), Edge(2, 2.5)]
            assert store.get_chunk(2) == [Edge(8, 8.125)]
            assert store.get_chunk(5) == [Edge(3, "text-value"), Edge(9, b"\x00\xffbin")]
            assert store.get_chunk("alpha") == [Edge(11, [1, 2, {"a": None}])]
            assert store.get_chunk(("t", 3)) == [Edge(1, (True, False, 2.25))]
        finally:
            store.close()

    def test_golden_reencode_is_byte_identical(self, tmp_path):
        """Re-writing the golden chunks produces the same chunk bytes."""
        source = MRBGStore.open(GOLDEN_STORE)
        clone = make_store(tmp_path)
        try:
            chunks = [(key, source.get_chunk(key)) for key in source.keys()]
            clone.build(chunks)
            for key, entries in chunks:
                assert clone.get_chunk(key) == entries
                assert clone._index[key].length == source._index[key].length
        finally:
            source.close()
            clone.close()


class TestIndexAccounting:
    def test_save_index_charges_metrics(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        writes_before = store.metrics.io_writes
        bytes_before = store.metrics.bytes_written
        time_before = store.metrics.write_time_s
        nbytes = store.save_index()
        assert nbytes > 0
        assert store.metrics.io_writes == writes_before + 1
        assert store.metrics.bytes_written == bytes_before + nbytes
        assert store.metrics.write_time_s > time_before
        store.close()

    def test_open_charges_index_read(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(10))
        nbytes = store.save_index()
        store.close()
        reopened = MRBGStore.open(str(tmp_path / "store"))
        assert reopened.metrics.io_reads == 1
        assert reopened.metrics.bytes_read == nbytes
        assert reopened.metrics.read_time_s > 0
        reopened.close()

    def test_index_roundtrips_through_stream_format(self, tmp_path):
        store = make_store(tmp_path)
        store.build([(k, [Edge(0, 1.0)]) for k in [3, ("t", 1), "s"]])
        list(store.merge_delta([(3, [DeltaEdge(1, 1.0, Op.INSERT)])]))
        store.save_index()
        index_before = dict(store._index)
        batches_before = store.num_batches
        store.close()
        reopened = MRBGStore.open(str(tmp_path / "store"))
        assert reopened._index == index_before
        assert reopened.num_batches == batches_before
        reopened.close()


class TestStreamingCompaction:
    def test_compact_multi_batch_streams_to_same_content(self, tmp_path):
        # Tiny append buffer: compaction must flush in many small batches
        # instead of holding the file in memory, with identical results.
        store = make_store(tmp_path, append_buffer_size=64)
        store.build(build_chunks(40))
        for generation in range(3):
            list(store.merge_delta(
                [(k, [DeltaEdge(0, float(generation), Op.INSERT)])
                 for k in range(0, 40, 3)]
            ))
        before = {k: store.get_chunk(k) for k in store.keys()}
        live = store.live_bytes()
        store.compact()
        assert store.file_size == live
        assert store.num_batches == 1
        assert {k: store.get_chunk(k) for k in store.keys()} == before
        # The compacted file is immediately reusable for further merges.
        list(store.merge_delta([(1, [DeltaEdge(9, 99.0, Op.INSERT)])]))
        assert Edge(9, 99.0) in store.get_chunk(1)
        store.close()

    def test_compact_leaves_no_temp_file(self, tmp_path):
        store = make_store(tmp_path)
        store.build(build_chunks(5))
        store.compact()
        assert not [f for f in os.listdir(store.directory) if f.endswith(".compact")]
        store.close()

    def test_compact_empty_store(self, tmp_path):
        store = make_store(tmp_path)
        store.build([])
        store.compact()
        assert store.file_size == 0
        assert store.num_batches == 0
        store.close()


class TestPrefetchLookahead:
    def test_default_comes_from_config(self, tmp_path):
        from repro.common import config
        store = make_store(tmp_path)
        assert store.prefetch_lookahead == config.DEFAULT_PREFETCH_LOOKAHEAD
        store.close()

    def test_lookahead_bounds_upcoming(self, tmp_path):
        store = make_store(tmp_path, prefetch_lookahead=2)
        store.build(build_chunks(10))
        keys = list(range(10))
        store.begin_merge(keys)
        loc = store._index[0]
        upcoming = store._upcoming_in_batch(0, loc)
        assert len(upcoming) == 2
        store.end_merge()
        store.close()

    def test_env_override(self, tmp_path, monkeypatch):
        import importlib
        from repro.common import config
        monkeypatch.setenv("REPRO_PREFETCH_LOOKAHEAD", "7")
        importlib.reload(config)
        try:
            assert config.DEFAULT_PREFETCH_LOOKAHEAD == 7
        finally:
            monkeypatch.delenv("REPRO_PREFETCH_LOOKAHEAD")
            importlib.reload(config)


class TestEncodeOnce:
    def test_put_chunk_index_length_matches_single_encoding(self, tmp_path):
        store = make_store(tmp_path)
        entries = [Edge(0, 1.0), Edge(1, 2.0)]
        store.begin_merge([])
        store.put_chunk(42, entries)
        store.end_merge()
        assert store.get_chunk(42) == entries
        assert store._index[42].length == len(encode_chunk(42, entries))
        assert store._index[42].length == chunk_size(42, entries)
        store.close()

    def test_chunk_size_no_longer_encodes(self):
        # chunk_size must agree with the encoder for every value shape.
        cases = [
            (1, [Edge(0, 1.5), Edge(1, 2.5), Edge(2, 3.5), Edge(3, 4.5)]),
            ("k", [Edge(0, "ünïcode"), Edge(1, b"raw")]),
            ((1, "t"), [Edge(5, [1, {"a": (None, True)}])]),
            (0, []),
        ]
        for k2, entries in cases:
            assert chunk_size(k2, entries) == len(encode_chunk(k2, entries))
