"""Unit tests for the read-window planning policies (Algorithm 1, §5.2)."""

from __future__ import annotations

import pytest

from repro.mrbgraph.windows import (
    ChunkLocation,
    IndexOnlyPolicy,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    SingleFixedWindowPolicy,
    policy_by_name,
)


def loc(offset, length, batch=0):
    return ChunkLocation(offset=offset, length=length, batch=batch)


class TestIndexOnly:
    def test_reads_exact_chunk(self):
        plan = IndexOnlyPolicy().plan(loc(100, 50), [], file_size=1000)
        assert (plan.offset, plan.nbytes) == (100, 50)

    def test_caps_at_file_end(self):
        plan = IndexOnlyPolicy().plan(loc(990, 50), [], file_size=1000)
        assert plan.nbytes == 10


class TestFixedWindows:
    def test_single_fixed_reads_window(self):
        policy = SingleFixedWindowPolicy(window_size=400)
        plan = policy.plan(loc(100, 50), [], file_size=1000)
        assert (plan.offset, plan.nbytes) == (100, 400)

    def test_window_never_smaller_than_chunk(self):
        policy = SingleFixedWindowPolicy(window_size=10)
        plan = policy.plan(loc(0, 64), [], file_size=1000)
        assert plan.nbytes == 64

    def test_multi_fixed_is_per_batch(self):
        assert MultiFixedWindowPolicy().per_batch_windows
        assert not SingleFixedWindowPolicy().per_batch_windows

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SingleFixedWindowPolicy(window_size=0)
        with pytest.raises(ValueError):
            MultiFixedWindowPolicy(window_size=-1)


class TestDynamicWindow:
    def test_extends_over_small_gaps(self):
        # Algorithm 1: fold the next chunk in while gap < T.
        policy = MultiDynamicWindowPolicy(gap_threshold=100, read_cache_size=10_000)
        upcoming = [loc(160, 40), loc(230, 40)]
        plan = policy.plan(loc(100, 50), upcoming, file_size=10_000)
        # 100..150, gap 10 -> 160..200, gap 30 -> 230..270.
        assert plan.offset == 100
        assert plan.nbytes == 170

    def test_stops_at_large_gap(self):
        policy = MultiDynamicWindowPolicy(gap_threshold=100, read_cache_size=10_000)
        upcoming = [loc(500, 40)]  # gap of 350 >= T
        plan = policy.plan(loc(100, 50), upcoming, file_size=10_000)
        assert plan.nbytes == 50

    def test_respects_cache_budget(self):
        policy = MultiDynamicWindowPolicy(gap_threshold=1000, read_cache_size=100)
        upcoming = [loc(160, 80)]  # would need 140 total > 100 budget
        plan = policy.plan(loc(100, 50), upcoming, file_size=10_000)
        assert plan.nbytes == 50

    def test_skips_backward_duplicates(self):
        policy = MultiDynamicWindowPolicy(gap_threshold=1000, read_cache_size=10_000)
        upcoming = [loc(40, 20)]  # behind the target: stop extending
        plan = policy.plan(loc(100, 50), upcoming, file_size=10_000)
        assert plan.nbytes == 50

    def test_smallest_window_for_last_request(self):
        # Fig 7: "Since there are no further requests, we use the smallest
        # possible read window".
        policy = MultiDynamicWindowPolicy()
        plan = policy.plan(loc(100, 50), [], file_size=10_000)
        assert plan.nbytes == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiDynamicWindowPolicy(gap_threshold=-1)
        with pytest.raises(ValueError):
            MultiDynamicWindowPolicy(read_cache_size=0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        ["index-only", "single-fix-window", "multi-fix-window",
         "multi-dynamic-window"],
    )
    def test_policy_by_name(self, name):
        policy = policy_by_name(name)
        assert hasattr(policy, "plan")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            policy_by_name("exotic-window")
