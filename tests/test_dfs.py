"""Tests for the block-structured distributed file system."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.common.errors import FileAlreadyExists, FileNotFoundInDFS
from repro.common.sizeof import records_size
from repro.dfs.filesystem import DistributedFS


@pytest.fixture
def tiny_dfs():
    cluster = Cluster(num_workers=4, seed=1)
    return DistributedFS(cluster, block_size=256, replication=2)


class TestWriteRead:
    def test_roundtrip(self, tiny_dfs):
        records = [(i, f"value-{i}") for i in range(20)]
        tiny_dfs.write("/f", records)
        assert tiny_dfs.read_all("/f") == records

    def test_splits_into_blocks(self, tiny_dfs):
        records = [(i, "x" * 50) for i in range(40)]
        f = tiny_dfs.write("/f", records)
        assert len(f.blocks) > 1
        assert f.num_records == 40
        assert sum(b.num_records for b in f.blocks) == 40

    def test_block_sizes_match_estimator(self, tiny_dfs):
        records = [(i, "x" * 30) for i in range(10)]
        f = tiny_dfs.write("/f", records)
        assert f.size_bytes == records_size(records)

    def test_empty_file_has_one_block(self, tiny_dfs):
        f = tiny_dfs.write("/empty", [])
        assert len(f.blocks) == 1
        assert f.num_records == 0

    def test_overwrite_flag(self, tiny_dfs):
        tiny_dfs.write("/f", [(1, "a")])
        with pytest.raises(FileAlreadyExists):
            tiny_dfs.write("/f", [(2, "b")])
        tiny_dfs.write("/f", [(2, "b")], overwrite=True)
        assert tiny_dfs.read_all("/f") == [(2, "b")]


class TestPlacement:
    def test_replication_bounded_by_workers(self, tiny_dfs):
        f = tiny_dfs.write("/f", [(i, i) for i in range(50)])
        for block in f.blocks:
            assert len(block.locations) == 2
            assert len(set(block.locations)) == 2
            assert all(0 <= w < 4 for w in block.locations)

    def test_placement_deterministic_per_seed(self):
        def locations(seed):
            cluster = Cluster(num_workers=4, seed=seed)
            dfs = DistributedFS(cluster, block_size=256)
            f = dfs.write("/f", [(i, "x" * 40) for i in range(30)])
            return [tuple(b.locations) for b in f.blocks]

        assert locations(5) == locations(5)


class TestNamespace:
    def test_missing_file_raises(self, tiny_dfs):
        with pytest.raises(FileNotFoundInDFS):
            tiny_dfs.file("/nope")

    def test_exists(self, tiny_dfs):
        assert not tiny_dfs.exists("/f")
        tiny_dfs.write("/f", [(1, 1)])
        assert tiny_dfs.exists("/f")

    def test_delete(self, tiny_dfs):
        tiny_dfs.write("/f", [(1, 1)])
        tiny_dfs.delete("/f")
        assert not tiny_dfs.exists("/f")
        with pytest.raises(FileNotFoundInDFS):
            tiny_dfs.delete("/f")

    def test_ls_prefix(self, tiny_dfs):
        tiny_dfs.write("/a/1", [(1, 1)])
        tiny_dfs.write("/a/2", [(1, 1)])
        tiny_dfs.write("/b/1", [(1, 1)])
        assert tiny_dfs.ls("/a") == ["/a/1", "/a/2"]
        assert len(tiny_dfs.ls()) == 3

    def test_size(self, tiny_dfs):
        records = [(1, "hello")]
        tiny_dfs.write("/f", records)
        assert tiny_dfs.size("/f") == records_size(records)


class TestValidation:
    def test_bad_block_size(self):
        cluster = Cluster(num_workers=2)
        with pytest.raises(ValueError):
            DistributedFS(cluster, block_size=0)

    def test_bad_replication(self):
        cluster = Cluster(num_workers=2)
        with pytest.raises(ValueError):
            DistributedFS(cluster, replication=0)
