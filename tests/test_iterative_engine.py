"""Tests for the iterMR engine (§4): correctness against references,
convergence, co-location savings, and the regrouping transformation."""

from __future__ import annotations

import pytest

from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.common.errors import InvalidJobConf
from repro.datasets.graphs import powerlaw_web_graph, weighted_graph_from
from repro.datasets.matrices import block_matrix
from repro.datasets.points import gaussian_points
from repro.iterative.api import Dependency, IterativeJob, regroup_keys
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster


class TestPageRank:
    def test_matches_reference(self):
        graph = powerlaw_web_graph(300, 5, seed=4)
        algorithm = PageRank()
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, graph, num_partitions=4, max_iterations=6)
        )
        reference = algorithm.reference(graph, 6)
        assert set(result.state) == set(reference)
        assert max(abs(result.state[k] - reference[k]) for k in reference) < 1e-9

    def test_epsilon_convergence(self):
        graph = powerlaw_web_graph(200, 5, seed=4)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=4,
                         max_iterations=100, epsilon=1e-6)
        )
        assert result.converged
        assert result.iterations < 100

    def test_fixed_iterations_without_epsilon(self):
        graph = powerlaw_web_graph(100, 4, seed=4)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=4, max_iterations=3)
        )
        assert result.iterations == 3
        assert not result.converged

    def test_initial_state_override(self):
        graph = powerlaw_web_graph(100, 4, seed=4)
        algorithm = PageRank()
        warm = algorithm.reference(graph, 200)  # essentially the fixpoint
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, graph, num_partitions=4,
                         max_iterations=50, epsilon=1e-6),
            initial_state=warm,
        )
        # Warm start from the fixpoint converges almost immediately.
        assert result.iterations <= 3

    def test_per_iteration_stats(self):
        graph = powerlaw_web_graph(100, 4, seed=4)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=4, max_iterations=4)
        )
        assert len(result.per_iteration) == 4
        for stats in result.per_iteration:
            assert stats.times.total > 0
            assert stats.total_difference >= 0

    def test_job_startup_charged_once(self):
        graph = powerlaw_web_graph(100, 4, seed=4)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=4, max_iterations=5),
            charge_preprocess=False,
        )
        assert result.metrics.times.startup == pytest.approx(
            cluster.cost_model.job_startup_s
        )


class TestSSSP:
    def test_matches_reference(self):
        base = powerlaw_web_graph(250, 5, seed=9)
        graph = weighted_graph_from(base, seed=1)
        algorithm = SSSP(source=0)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, graph, num_partitions=4, max_iterations=8)
        )
        reference = algorithm.reference(graph, 8)
        for k, expected in reference.items():
            assert result.state[k] == expected or (
                abs(result.state[k] - expected) < 1e-9
            )

    def test_source_distance_zero(self):
        base = powerlaw_web_graph(100, 4, seed=9)
        graph = weighted_graph_from(base, seed=1)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(SSSP(source=0), graph, num_partitions=4, max_iterations=5)
        )
        assert result.state[0] == 0.0


class TestKmeans:
    def test_matches_reference(self):
        points = gaussian_points(300, dim=4, k=4, seed=3)
        algorithm = Kmeans(k=4, dim=4)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, points, num_partitions=4, max_iterations=5)
        )
        reference = algorithm.reference(points, 5)
        assert algorithm.difference(result.state[1], reference[1]) < 1e-9

    def test_state_is_single_kv_pair(self):
        points = gaussian_points(100, dim=3, k=3, seed=3)
        algorithm = Kmeans(k=3, dim=3)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, points, num_partitions=4, max_iterations=2)
        )
        assert list(result.state) == [1]
        assert len(result.state[1]) == 3


class TestGIMV:
    def test_matches_reference(self):
        matrix = block_matrix(num_blocks=6, block_size=12, density=0.06, seed=2)
        algorithm = GIMV(block_size=12)
        cluster, dfs = fresh_cluster()
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(algorithm, matrix, num_partitions=4, max_iterations=5)
        )
        reference = algorithm.reference(matrix, 5)
        worst = max(
            max(abs(a - b) for a, b in zip(result.state[j], reference[j]))
            for j in reference
        )
        assert worst < 1e-9

    def test_many_to_one_dependency(self):
        assert GIMV().dependency is Dependency.MANY_TO_ONE
        assert GIMV().project((3, 7)) == 7


class TestValidation:
    def test_bad_partitions(self):
        job = IterativeJob(PageRank(), powerlaw_web_graph(10, 2, seed=1),
                           num_partitions=0)
        with pytest.raises(InvalidJobConf):
            job.validate()

    def test_bad_epsilon(self):
        job = IterativeJob(PageRank(), powerlaw_web_graph(10, 2, seed=1),
                           epsilon=-1.0)
        with pytest.raises(InvalidJobConf):
            job.validate()

    def test_algorithm_must_expose_api(self):
        job = IterativeJob(object(), None)
        with pytest.raises(InvalidJobConf):
            job.validate()


class TestRegroupKeys:
    def test_one_to_many_becomes_one_to_one(self):
        # Fig 5: group state kv-pairs that map to the same structure pair.
        pairs = [("dk1", 1), ("dk2", 2), ("dk3", 3), ("dk4", 4)]
        grouped = regroup_keys(pairs, lambda dk: "g1" if dk in ("dk1", "dk2") else "g2")
        assert dict(grouped) == {
            "g1": {"dk1": 1, "dk2": 2},
            "g2": {"dk3": 3, "dk4": 4},
        }

    def test_empty(self):
        assert regroup_keys([], lambda dk: dk) == []
