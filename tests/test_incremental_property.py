"""Property test of the paper's §3.1 theorem: for *any* base input and
*any* delta, incremental processing is logically equivalent to full
recomputation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.kvpair import delete, insert
from repro.incremental.api import delta_to_dfs_records
from repro.incremental.engine import IncrMREngine
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf

from tests.conftest import fresh_cluster


class FanoutMapper(Mapper):
    """Emits one edge per (target, weight) entry — the Fig 3 shape."""

    def map(self, key, value, ctx):
        for target, weight in value:
            ctx.emit(target, weight)


class SortedSumReducer(Reducer):
    """Order-insensitive aggregate so float association cannot differ."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, (round(sum(sorted(values)), 6), len(values)))


# Base inputs: small adjacency maps with integer weights (exact floats).
_links = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9),
              st.integers(min_value=1, max_value=8)),
    max_size=4,
).map(tuple)
_graphs = st.dictionaries(st.integers(min_value=0, max_value=14), _links,
                          min_size=1, max_size=12)
# Delta scripts: per touched key, delete / insert / rewrite.
_actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=19),
              st.sampled_from(["delete", "insert", "rewrite"]),
              _links),
    max_size=8,
)


class TestSection31Equivalence:
    @given(_graphs, _actions)
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_recompute(self, graph, actions):
        # Build a well-formed delta from the action script.
        current = dict(graph)
        records = []
        for key, action, links in actions:
            if action == "delete" and key in current:
                records.append(delete(key, current.pop(key)))
            elif action == "insert" and key not in current:
                records.append(insert(key, links))
                current[key] = links
            elif action == "rewrite" and key in current and current[key] != links:
                records.append(delete(key, current[key]))
                records.append(insert(key, links))
                current[key] = links

        conf = JobConf(name="fanout", mapper=FanoutMapper,
                       reducer=SortedSumReducer, inputs=["/in"],
                       output="/out", num_reducers=3)

        cluster, dfs = fresh_cluster()
        dfs.write("/in", sorted(graph.items()))
        engine = IncrMREngine(cluster, dfs)
        _, state = engine.run_initial(conf)
        dfs.write("/delta", delta_to_dfs_records(records))
        engine.run_incremental(conf, "/delta", state)
        incremental = dict(dfs.read_all("/out"))
        state.cleanup()

        cluster2, dfs2 = fresh_cluster()
        dfs2.write("/in", sorted(current.items()))
        MapReduceEngine(cluster2, dfs2).run(conf)
        scratch = dict(dfs2.read_all("/out"))

        assert incremental == scratch
