"""Shape tests for the §8 experiment reproductions (test scale).

These assert the *qualitative* claims of each table/figure — who wins,
where the crossovers fall — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation_incoop import run_ablation
from repro.experiments.fig8_overall import run_workload
from repro.experiments.fig9_stages import run_fig9
from repro.experiments.fig10_cpc import mean_relative_error, run_fig10
from repro.experiments.fig11_propagation import run_fig11
from repro.experiments.fig12_spark import run_fig12
from repro.experiments.fig13_faults import RECOVERY_BOUND_S, run_fig13
from repro.experiments.harness import ExperimentResult, format_table, scale_params
from repro.experiments.onestep_apriori import run_apriori_onestep
from repro.experiments.table3_datasets import run_table3
from repro.experiments.table4_mrbgstore import run_table4

pytestmark = pytest.mark.filterwarnings("ignore")


class TestHarness:
    def test_format_table(self):
        result = ExperimentResult(
            name="demo", headers=("a", "b"), rows=[(1, 2.5)], notes="n"
        )
        text = result.to_text()
        assert "demo" in text and "2.50" in text and "note: n" in text

    def test_column_extraction(self):
        result = ExperimentResult("d", ("x", "y"), [(1, 2), (3, 4)])
        assert result.column("y") == [2, 4]

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            scale_params("galactic")


class TestOneStepAPriori:
    def test_incremental_wins_big(self):
        result = run_apriori_onestep(scale="test")
        speedups = result.column("speedup")
        # Paper: 12x; at least a several-fold win must reproduce.
        assert speedups[1] > 4.0


class TestFig8:
    def test_pagerank_ordering(self):
        times = run_workload("pagerank", scale="test", change_fraction=0.10)
        # i2MR with CPC beats iterMR beats PlainMR; HaLoop is not the winner.
        assert times["i2mr_cpc"] < times["itermr"] < times["plainmr"]
        assert times["haloop"] > times["itermr"]

    def test_kmeans_falls_back_to_itermr(self):
        times = run_workload("kmeans", scale="test", change_fraction=0.10)
        # Fallback: i2MR within ~25% of iterMR, both beating PlainMR.
        assert times["i2mr_cpc"] < times["plainmr"]
        assert times["i2mr_cpc"] == pytest.approx(times["itermr"], rel=0.3)

    def test_gimv_plainmr_worst(self):
        times = run_workload("gimv", scale="test", change_fraction=0.10)
        assert times["plainmr"] == max(times.values())
        assert times["i2mr_cpc"] <= times["haloop"]


class TestFig9:
    def test_stage_savings(self):
        result = run_fig9(scale="test")
        rows = {row[0]: row for row in result.rows}
        # iterMR cuts every stage; i2MR cuts map/shuffle/sort harder.
        for stage in ("map", "shuffle", "reduce"):
            plain, itermr, i2mr = rows[stage][1], rows[stage][2], rows[stage][3]
            assert itermr < plain
        assert rows["map"][3] < rows["map"][2]      # i2mr map < itermr map
        assert rows["shuffle"][3] < rows["shuffle"][2]
        # i2MR pays MRBG-Store cost: its reduce exceeds iterMR's (§8.3).
        assert rows["reduce"][3] > rows["reduce"][2]


class TestTable4:
    def test_policy_ordering(self):
        result = run_table4(scale="test")
        rows = {row[0]: row for row in result.rows}
        # index-only issues the most reads for the fewest bytes.
        assert rows["index-only"][1] == max(r[1] for r in result.rows)
        assert rows["index-only"][2] == min(r[2] for r in result.rows)
        # multi-dynamic-window posts the best (or tied-best) time among
        # the window techniques and reads less than the fixed windows.
        assert rows["multi-dynamic-window"][2] <= rows["single-fix-window"][2]
        assert rows["multi-dynamic-window"][2] <= rows["multi-fix-window"][2]
        assert rows["multi-dynamic-window"][3] == min(
            rows[k][3] for k in ("single-fix-window", "multi-fix-window",
                                 "multi-dynamic-window")
        )


class TestFig10:
    def test_threshold_tradeoff(self):
        result = run_fig10(scale="test")
        by_threshold = {}
        for ft, iteration, cumulative, error, _ in result.rows:
            by_threshold.setdefault(ft, []).append((iteration, cumulative, error))
        final = {ft: rows[-1] for ft, rows in by_threshold.items()}
        # Larger threshold -> faster.
        assert final[1.0][1] <= final[0.1][1]
        # Larger threshold -> at least as much error.
        assert final[1.0][2] >= final[0.1][2] - 1e-12

    def test_mean_relative_error_helper(self):
        assert mean_relative_error({1: 1.1}, {1: 1.0}) == pytest.approx(0.1)
        assert mean_relative_error({}, {}) == 0.0


class TestFig11:
    def test_no_cpc_propagation_explodes(self):
        result = run_fig11(scale="test", change_fraction=0.01)
        series = {}
        for variant, iteration, propagated, _ in result.rows:
            series.setdefault(variant, []).append(propagated)
        no_cpc = series["w/o CPC"]
        assert no_cpc[-1] > no_cpc[0]  # grows
        for variant, values in series.items():
            if variant != "w/o CPC":
                assert values[-1] <= no_cpc[-1]


class TestFig12:
    def test_spark_crossover(self):
        result = run_fig12(scale="test")
        rows = {row[0]: row for row in result.rows}
        # Spark wins at the small end...
        assert rows["clueweb-xs"][4] < rows["clueweb-xs"][3]
        # ...and spills (with a large slowdown vs its in-memory trend) at l.
        assert rows["clueweb-l"][5] != "0%"
        spark_growth = rows["clueweb-l"][4] / rows["clueweb-m"][4]
        itermr_growth = rows["clueweb-l"][3] / rows["clueweb-m"][3]
        assert spark_growth > itermr_growth

    def test_itermr_beats_plainmr_everywhere(self):
        result = run_fig12(scale="test")
        for row in result.rows:
            assert row[3] < row[2]


class TestFig13:
    def test_recoveries_within_bound(self):
        result = run_fig13(scale="test")
        failure_rows = result.rows[:-1]
        assert len(failure_rows) == 3
        for row in failure_rows:
            assert row[4] == "yes"
            assert row[3] <= RECOVERY_BOUND_S


class TestTable3:
    def test_all_five_datasets(self):
        result = run_table3(scale="test")
        assert len(result.rows) == 5
        assert {row[0] for row in result.rows} == {
            "APriori", "PageRank", "SSSP", "Kmeans", "GIM-V"
        }


class TestAblation:
    def test_scattered_updates_defeat_task_reuse(self):
        result = run_ablation(scale="test")
        rows = {(row[0], row[1]): row for row in result.rows}
        append = rows[("incoop", "append-only")]
        scattered = rows[("incoop", "scattered-updates")]
        assert scattered[2] > append[2]  # scattered costs more
        kv = rows[("i2mapreduce", "append-only")]
        assert kv[2] < append[2]  # kv-level still wins
