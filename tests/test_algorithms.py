"""Per-algorithm unit tests: the §4 API contracts and references."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.apriori import APriori, APrioriMapper
from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans, STATE_KEY, _nearest_centroid
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import INF, SSSP
from repro.algorithms.wordcount import WordCountMapper, reference_wordcount
from repro.datasets.graphs import powerlaw_web_graph, weighted_graph_from
from repro.datasets.matrices import block_matrix
from repro.datasets.points import gaussian_points
from repro.datasets.text import zipf_tweets
from repro.mapreduce.api import Context


class TestPageRankUnit:
    def test_map_spreads_rank(self):
        pr = PageRank()
        out = pr.map_instance(0, ((1, 2, 3), ""), 0, 0.9)
        assert out == [(1, 0.3), (2, 0.3), (3, 0.3)]

    def test_map_no_links(self):
        assert PageRank().map_instance(0, ((), ""), 0, 1.0) == []

    def test_reduce_applies_damping(self):
        pr = PageRank(damping=0.8)
        assert pr.reduce_instance(0, [0.5, 0.5]) == pytest.approx(1.0)
        assert pr.reduce_instance(0, []) == pytest.approx(0.2)

    def test_projection_identity(self):
        assert PageRank().project(42) == 42

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)

    def test_reference_preserves_total_rank_shape(self):
        graph = powerlaw_web_graph(100, 5, seed=1)
        ranks = PageRank().reference(graph, 10)
        assert len(ranks) == 100
        assert all(r >= 0.2 - 1e-12 for r in ranks.values())


class TestSSSPUnit:
    def test_map_relaxes_edges(self):
        sssp = SSSP(source=0)
        out = sssp.map_instance(1, (((2, 1.5), (3, 2.0)), ""), 1, 1.0)
        assert out == [(2, 2.5), (3, 3.0)]

    def test_map_from_unreachable(self):
        assert SSSP().map_instance(1, (((2, 1.0),), ""), 1, INF) == []

    def test_reduce_takes_min(self):
        sssp = SSSP(source=0)
        assert sssp.reduce_instance(5, [3.0, 1.0, 2.0]) == 1.0
        assert sssp.reduce_instance(5, []) == INF
        assert sssp.reduce_instance(0, [9.0]) == 0.0  # source pinned

    def test_difference_handles_infinity(self):
        sssp = SSSP()
        assert sssp.difference(INF, INF) == 0.0
        assert sssp.difference(1.0, INF) > 1e6
        assert sssp.difference(3.0, 1.0) == pytest.approx(2.0)

    def test_reference_matches_networkx(self):
        import networkx as nx

        base = powerlaw_web_graph(80, 5, seed=7)
        graph = weighted_graph_from(base, seed=8)
        dist = SSSP(source=0).reference(graph, 80)

        g = nx.DiGraph()
        g.add_nodes_from(graph.out_links)
        for i, links in graph.out_links.items():
            for j, w in links:
                g.add_edge(i, j, weight=w)
        expected = nx.single_source_dijkstra_path_length(g, 0)
        for v in graph.out_links:
            if v in expected:
                assert dist[v] == pytest.approx(expected[v])
            else:
                assert dist[v] == INF


class TestKmeansUnit:
    def test_nearest_centroid_ties_break_low(self):
        centroids = ((0, (0.0,)), (1, (2.0,)))
        assert _nearest_centroid((1.0,), centroids) == 0  # equidistant

    def test_map_assigns_nearest(self):
        km = Kmeans(k=2, dim=2)
        centroids = ((0, (0.0, 0.0)), (1, (10.0, 10.0)))
        assert km.map_instance(5, (1.0, 1.0), STATE_KEY, centroids) == [
            (0, ((1.0, 1.0), 1))
        ]

    def test_reduce_averages(self):
        km = Kmeans(k=2, dim=2)
        result = km.reduce_instance(0, [((2.0, 0.0), 1), ((4.0, 2.0), 1)])
        assert result == pytest.approx((3.0, 1.0))

    def test_reduce_empty_returns_none(self):
        assert Kmeans().reduce_instance(0, []) is None

    def test_assemble_keeps_missing_centroids(self):
        km = Kmeans(k=2, dim=1)
        state = {STATE_KEY: ((0, (1.0,)), (1, (5.0,)))}
        km.assemble_state(state, [(0, (2.0,))])
        assert dict(state[STATE_KEY]) == {0: (2.0,), 1: (5.0,)}

    def test_difference_is_max_movement(self):
        km = Kmeans(k=2, dim=1)
        old = ((0, (0.0,)), (1, (0.0,)))
        new = ((0, (1.0,)), (1, (3.0,)))
        assert km.difference(new, old) == pytest.approx(3.0)


class TestGIMVUnit:
    def test_combine2_sparse_multiply(self):
        gimv = GIMV(block_size=3)
        block = ((0, 1, 2.0), (2, 0, 1.0))
        assert gimv.combine2(block, (1.0, 2.0, 3.0)) == (4.0, 0.0, 1.0)

    def test_combine_all_sums(self):
        gimv = GIMV(block_size=2)
        assert gimv.combine_all([(1.0, 2.0), (3.0, 4.0)]) == (4.0, 6.0)

    def test_assign_damps(self):
        gimv = GIMV(block_size=2, beta=0.5)
        assert gimv.assign(None, (2.0, 4.0)) == (1.5, 2.5)

    def test_reduce_instance_composes(self):
        gimv = GIMV(block_size=2, beta=0.5)
        out = gimv.reduce_instance(0, [(2.0, 0.0), (0.0, 2.0)])
        assert out == (1.5, 1.5)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            GIMV(beta=1.0)

    def test_reference_bounded(self):
        matrix = block_matrix(4, 8, 0.1, seed=3)
        gimv = GIMV(block_size=8)
        vec = gimv.reference(matrix, 30)
        for block in vec.values():
            assert all(0.0 <= x <= 2.0 for x in block)


class TestAPrioriUnit:
    def test_mapper_counts_candidate_pairs(self):
        mapper = APrioriMapper([("a", "b"), ("a", "c")])
        ctx = Context()
        mapper.map(0, "a b x y", ctx)
        assert ctx.take() == [(("a", "b"), 1)]

    def test_mapper_needs_both_words(self):
        mapper = APrioriMapper([("a", "b")])
        ctx = Context()
        mapper.map(0, "a x y", ctx)
        assert ctx.take() == []

    def test_duplicate_words_count_once(self):
        mapper = APrioriMapper([("a", "b")])
        ctx = Context()
        mapper.map(0, "a a b b", ctx)
        assert ctx.take() == [(("a", "b"), 1)]

    def test_reference_counts(self):
        dataset = zipf_tweets(100, seed=1)
        counts = APriori(dataset).reference_counts(dataset.tweets)
        for pair, count in counts.items():
            assert pair in dataset.candidate_pairs
            assert count > 0


class TestWordCountUnit:
    def test_mapper(self):
        ctx = Context()
        WordCountMapper().map(0, "a b a", ctx)
        assert ctx.take() == [("a", 1), ("b", 1), ("a", 1)]

    def test_reference(self):
        docs = [(0, "a b"), (1, "a")]
        assert reference_wordcount(docs) == {"a": 2, "b": 1}
