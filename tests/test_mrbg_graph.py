"""Tests for MRBGraph edges and the delta-application semantics (§3.3)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.kvpair import Op
from repro.mrbgraph.graph import DeltaEdge, Edge, apply_delta, group_delta_by_key


class TestApplyDelta:
    def test_insert_new_edge(self):
        merged = apply_delta([Edge(1, "a")], [DeltaEdge(2, "b", Op.INSERT)])
        assert merged == [Edge(1, "a"), Edge(2, "b")]

    def test_insert_duplicate_updates(self):
        # "(K2, MK) uniquely identifies a MRBGraph edge" — a duplicate
        # insertion replaces the old value.
        merged = apply_delta([Edge(1, "old")], [DeltaEdge(1, "new", Op.INSERT)])
        assert merged == [Edge(1, "new")]

    def test_delete_removes(self):
        merged = apply_delta([Edge(1, "a"), Edge(2, "b")],
                             [DeltaEdge(1, None, Op.DELETE)])
        assert merged == [Edge(2, "b")]

    def test_delete_missing_is_noop(self):
        merged = apply_delta([Edge(1, "a")], [DeltaEdge(9, None, Op.DELETE)])
        assert merged == [Edge(1, "a")]

    def test_update_is_delete_then_insert(self):
        # A modification arrives as deletion followed by insertion (§3.3).
        merged = apply_delta(
            [Edge(1, 0.3)],
            [DeltaEdge(1, None, Op.DELETE), DeltaEdge(1, 0.6, Op.INSERT)],
        )
        assert merged == [Edge(1, 0.6)]

    def test_empty_result(self):
        merged = apply_delta([Edge(1, "a")], [DeltaEdge(1, None, Op.DELETE)])
        assert merged == []

    def test_result_sorted_by_mk(self):
        merged = apply_delta([], [DeltaEdge(5, "e", Op.INSERT),
                                  DeltaEdge(1, "a", Op.INSERT)])
        assert [e.mk for e in merged] == [1, 5]


class TestGroupDelta:
    def test_groups_and_sorts_by_k2(self):
        edges = [
            ("b", DeltaEdge(1, 1, Op.INSERT)),
            ("a", DeltaEdge(2, 2, Op.INSERT)),
            ("b", DeltaEdge(3, 3, Op.DELETE)),
        ]
        grouped = group_delta_by_key(edges)
        assert [k for k, _ in grouped] == ["a", "b"]
        assert len(dict(grouped)["b"]) == 2


# Property: apply_delta must behave exactly like a dict keyed by MK.
_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),  # mk
        st.integers(),  # value
        st.booleans(),  # is_delete
    ),
    max_size=40,
)


class TestProperties:
    @given(
        st.dictionaries(st.integers(min_value=0, max_value=15), st.integers(),
                        max_size=10),
        _ops,
    )
    @settings(max_examples=200)
    def test_matches_dict_model(self, initial, operations):
        old_entries = [Edge(mk, v) for mk, v in sorted(initial.items())]
        delta = [
            DeltaEdge(mk, None if is_delete else value,
                      Op.DELETE if is_delete else Op.INSERT)
            for mk, value, is_delete in operations
        ]
        model = dict(initial)
        for mk, value, is_delete in operations:
            if is_delete:
                model.pop(mk, None)
            else:
                model[mk] = value
        merged = apply_delta(old_entries, delta)
        assert merged == [Edge(mk, model[mk]) for mk in sorted(model)]

    @given(_ops)
    @settings(max_examples=100)
    def test_idempotent_on_empty_delta_tail(self, operations):
        delta = [
            DeltaEdge(mk, None if d else v, Op.DELETE if d else Op.INSERT)
            for mk, v, d in operations
        ]
        once = apply_delta([], delta)
        twice = apply_delta(once, [])
        assert once == twice
