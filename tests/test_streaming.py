"""Tests for the continuous-pipeline subsystem (`repro.streaming`).

The load-bearing claim: a pipeline replaying a recorded delta stream in
micro-batches leaves *byte-identical* final state to the same chunks
applied by hand with sequential ``run_incremental`` calls — across all
host execution backends.  Everything else (sources, batchers, the
simulated clock, the experiment) is checked piecewise.
"""

from __future__ import annotations

import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.wordcount import WordCountMapper, WordCountReducer, reference_wordcount
from repro.common import serialization
from repro.common.errors import (
    DeltaDecodeError,
    ReproError,
    StreamError,
    StreamSourceError,
)
from repro.common.kvpair import delete, insert
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.datasets.text import zipf_tweets
from repro.incremental.api import delta_to_dfs_records, dfs_records_to_delta
from repro.incremental.engine import IncrMREngine
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.mapreduce.job import JobConf
from repro.streaming import (
    ArrivedRecord,
    BackpressureBatcher,
    BatchOutcome,
    ByteBudgetBatcher,
    ContinuousPipeline,
    CountBatcher,
    DeltaSource,
    DFSTailSource,
    IterativeStreamConsumer,
    OneStepStreamConsumer,
    ReplaySource,
    StreamConsumer,
    SyntheticEvolvingSource,
    TimeWindowBatcher,
    delta_record_size,
    evolving_text_source,
    evolving_web_graph_source,
    net_delta_records,
)
from repro.streaming.batching import BatchFeedback

from tests.conftest import fresh_cluster

# --------------------------------------------------------------------- #
# delta decoding (hardened error path)                                  #
# --------------------------------------------------------------------- #


class TestDeltaDecode:
    def test_roundtrip(self):
        delta = [insert(1, "a b"), insert(2, "c")]
        assert dfs_records_to_delta(delta_to_dfs_records(delta)) == delta

    def test_bad_op_tag_raises_library_error(self):
        with pytest.raises(DeltaDecodeError) as err:
            dfs_records_to_delta([(1, ("value", "!"))])
        assert "op tag" in str(err.value)
        assert err.value.record == (1, ("value", "!"))

    def test_bad_shape_raises_library_error(self):
        with pytest.raises(DeltaDecodeError):
            dfs_records_to_delta([(1, "not-a-pair-of-value-and-op")])
        with pytest.raises(DeltaDecodeError):
            dfs_records_to_delta([(1, ("value", "+", "extra"))])

    def test_decode_error_is_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            dfs_records_to_delta([(1, ("value", "insert"))])

    def test_two_char_string_payload_rejected(self):
        # 'a+' would unpack into ('a', '+') and fabricate a value.
        with pytest.raises(DeltaDecodeError):
            dfs_records_to_delta([(1, "a+")])


# --------------------------------------------------------------------- #
# sources                                                               #
# --------------------------------------------------------------------- #


class TestReplaySource:
    def test_arrivals_at_fixed_rate(self):
        records = [insert(i, i) for i in range(4)]
        events = list(ReplaySource(records, rate=2.0, start_s=10.0))
        assert [e.record for e in events] == records
        assert [e.arrival_s for e in events] == [10.0, 10.5, 11.0, 11.5]

    def test_bad_rate(self):
        with pytest.raises(StreamSourceError):
            ReplaySource([], rate=0.0)


class TestDFSTailSource:
    def test_files_consumed_in_order_as_bursts(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/d/b", delta_to_dfs_records([insert(2, "x")]))
        dfs.write("/d/a", delta_to_dfs_records([insert(1, "y"), insert(3, "z")]))
        source = DFSTailSource(dfs, "/d/", period_s=30.0, start_s=5.0)
        events = list(source)
        # path order: /d/a before /d/b, one burst per file.
        assert [e.record.key for e in events] == [1, 3, 2]
        assert [e.arrival_s for e in events] == [5.0, 5.0, 35.0]

    def test_tail_semantics_across_iterations(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/d/0", delta_to_dfs_records([insert(0, "a")]))
        source = DFSTailSource(dfs, "/d/", period_s=10.0)
        assert [e.record.key for e in list(source)] == [0]
        dfs.write("/d/1", delta_to_dfs_records([insert(1, "b")]))
        assert [e.record.key for e in list(source)] == [1]  # only the new file

    def test_malformed_file_raises_decode_error(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/d/bad", [(1, ("v", "?"))])
        with pytest.raises(DeltaDecodeError):
            list(DFSTailSource(dfs, "/d/"))


class TestSyntheticEvolvingSource:
    def test_generations_arrive_as_spaced_bursts(self):
        graph = powerlaw_web_graph(60, 4.0, seed=1)
        source = evolving_web_graph_source(
            graph, fraction=0.1, generations=3, period_s=50.0, seed=4
        )
        events = list(source)
        assert events, "mutation should produce records"
        arrivals = sorted({e.arrival_s for e in events})
        assert arrivals == [0.0, 50.0, 100.0]
        # The tracked dataset equals replaying the same seeded mutations.
        expected = graph
        for g in range(3):
            expected = mutate_web_graph(expected, 0.1, seed=4 + g).new_graph
        assert source.current_dataset.out_links == expected.out_links

    def test_mutator_without_new_dataset_attr_rejected(self):
        source = SyntheticEvolvingSource(
            dataset={}, mutate=lambda d, f, seed: object(),
            fraction=0.1, generations=1,
        )
        with pytest.raises(StreamSourceError):
            list(source)


# --------------------------------------------------------------------- #
# batching policies                                                     #
# --------------------------------------------------------------------- #


class TestBatchers:
    def test_count_batcher(self):
        policy = CountBatcher(3)
        assert not policy.should_close(2, 999, 0.0, 1.0, 10)
        assert policy.should_close(3, 0, 0.0, 1.0, 10)
        with pytest.raises(StreamError):
            CountBatcher(0)

    def test_byte_budget_batcher(self):
        policy = ByteBudgetBatcher(100)
        assert not policy.should_close(5, 60, 0.0, 1.0, 40)   # 60+40 == 100
        assert policy.should_close(5, 61, 0.0, 1.0, 40)       # would exceed

    def test_time_window_batcher(self):
        policy = TimeWindowBatcher(30.0)
        assert not policy.should_close(5, 0, 10.0, 39.9, 1)
        assert policy.should_close(5, 0, 10.0, 40.0, 1)

    def test_backpressure_grows_and_shrinks(self):
        policy = BackpressureBatcher(
            min_records=4, max_records=64, high_water=10, growth=2.0
        )
        assert policy.target == 4
        policy.observe(BatchFeedback(backlog_records=11, processing_s=1.0,
                                     num_records=4, latency_s=1.0))
        assert policy.target == 8
        policy.observe(BatchFeedback(backlog_records=50, processing_s=1.0,
                                     num_records=8, latency_s=1.0))
        assert policy.target == 16
        policy.observe(BatchFeedback(backlog_records=0, processing_s=1.0,
                                     num_records=16, latency_s=1.0))
        assert policy.target == 8
        # drained queues walk the target back down to the floor.
        for _ in range(5):
            policy.observe(BatchFeedback(backlog_records=0, processing_s=1.0,
                                         num_records=8, latency_s=1.0))
        assert policy.target == 4
        policy.reset()
        assert policy.target == 4

    def test_backpressure_respects_max(self):
        policy = BackpressureBatcher(min_records=4, max_records=10, high_water=0)
        for _ in range(5):
            policy.observe(BatchFeedback(backlog_records=1, processing_s=1.0,
                                         num_records=4, latency_s=1.0))
        assert policy.target == 10


# --------------------------------------------------------------------- #
# pipeline clock & metrics (stub consumer: exact arithmetic)            #
# --------------------------------------------------------------------- #


class _FixedCostConsumer(StreamConsumer):
    """Charges a fixed simulated processing time per batch."""

    def __init__(self, processing_s: float) -> None:
        self.processing_s = processing_s
        self.batches = []

    def process_batch(self, records):
        self.batches.append(list(records))
        return BatchOutcome(processing_s=self.processing_s)

    def state(self):
        return {}


class TestPipelineClock:
    def test_latency_wait_and_backlog_arithmetic(self):
        # 6 records, one per second from t=0; engine takes 2.5s per batch
        # of 2 -> it falls behind, later batches queue.
        records = [insert(i, i) for i in range(6)]
        source = ReplaySource(records, rate=1.0, start_s=0.0)
        consumer = _FixedCostConsumer(2.5)
        pipe = ContinuousPipeline(source, CountBatcher(2), consumer)
        result = pipe.run()

        assert [len(b) for b in consumer.batches] == [2, 2, 2]
        b0, b1, b2 = result.batches
        # Batch 0: records arrive at 0,1 -> starts at 1, done 3.5.
        assert (b0.ready_s, b0.start_s, b0.done_s) == (1.0, 1.0, 3.5)
        assert b0.wait_s == 0.0 and b0.latency_s == 3.5
        # At t=3.5 records 2,3 (t=2,3) already arrived -> backlog 2.
        assert b0.backlog_records == 2
        # Batch 1: ready at 3, engine free at 3.5 -> waits 0.5, done 6.0.
        assert (b1.ready_s, b1.start_s, b1.done_s) == (3.0, 3.5, 6.0)
        assert b1.wait_s == 0.5
        assert b1.latency_s == 6.0 - 2.0
        assert b1.backlog_records == 2  # records at t=4,5 arrived by 6.0
        # Batch 2 drains the stream.
        assert (b2.ready_s, b2.start_s, b2.done_s) == (5.0, 6.0, 8.5)
        assert b2.backlog_records == 0
        # Aggregates.
        assert result.num_batches == 3
        assert result.num_records == 6
        assert result.max_backlog == 2
        assert result.makespan_s == 8.5
        assert result.mean_latency_s == pytest.approx((3.5 + 4.0 + 4.5) / 3)

    def test_run_respects_max_batches_and_resumes(self):
        records = [insert(i, i) for i in range(6)]
        pipe = ContinuousPipeline(
            ReplaySource(records, rate=100.0), CountBatcher(2),
            _FixedCostConsumer(1.0),
        )
        first = pipe.run(max_batches=1)
        assert first.num_batches == 1
        total = pipe.run()
        assert total.num_batches == 3
        assert total is pipe.result

    def test_drained_replay_source_yields_no_duplicates(self):
        records = [insert(i, i) for i in range(4)]
        pipe = ContinuousPipeline(
            ReplaySource(records, rate=10.0), CountBatcher(2),
            _FixedCostConsumer(1.0),
        )
        assert pipe.run().num_batches == 2
        # A second run on the drained source must not replay anything.
        assert pipe.run().num_batches == 2
        # ...but records appended to the recording are picked up.
        pipe.source.extend([insert(9, 9)])
        assert pipe.run().num_batches == 3

    def test_tail_source_picks_up_files_between_runs(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/d/0", delta_to_dfs_records([insert(0, "a"), insert(1, "b")]))
        consumer = _FixedCostConsumer(1.0)
        pipe = ContinuousPipeline(
            DFSTailSource(dfs, "/d/", period_s=10.0), CountBatcher(10), consumer
        )
        assert pipe.run().num_records == 2
        # A file written after the source drained reaches the next run.
        dfs.write("/d/1", delta_to_dfs_records([insert(2, "c")]))
        result = pipe.run()
        assert result.num_records == 3
        assert [r.key for r in consumer.batches[-1]] == [2]

    def test_byte_sizes_accounted(self):
        records = [insert(0, "abc"), insert(1, "defg")]
        pipe = ContinuousPipeline(
            ReplaySource(records, rate=1.0), CountBatcher(10),
            _FixedCostConsumer(1.0),
        )
        result = pipe.run()
        assert result.batches[0].num_bytes == sum(
            delta_record_size(r) for r in records
        )


# --------------------------------------------------------------------- #
# equivalence: micro-batched pipeline == sequential one-shot calls      #
# --------------------------------------------------------------------- #


def _recorded_web_deltas(graph, rounds=3, fraction=0.06, seed=50):
    records = []
    current = graph
    for g in range(rounds):
        delta = mutate_web_graph(current, fraction, seed=seed + g)
        records.extend(delta.records)
        current = delta.new_graph
    return records, current


def _pagerank_setup(executor=None):
    graph = powerlaw_web_graph(120, 5.0, seed=3)
    cluster, dfs = fresh_cluster()
    job = IterativeJob(PageRank(), graph, num_partitions=4,
                       max_iterations=60, epsilon=1e-6)
    options = I2MROptions(filter_threshold=0.001, max_iterations=25)
    consumer = IterativeStreamConsumer.from_initial(
        cluster, dfs, job, options, executor=executor
    )
    return graph, consumer, options


class TestPipelineEquivalence:
    BATCH = 9

    def _manual_state_bytes(self, graph, records):
        """Sequential one-shot run_incremental calls over the same chunks."""
        cluster, dfs = fresh_cluster()
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(PageRank(), graph, num_partitions=4,
                           max_iterations=60, epsilon=1e-6)
        _, prev = engine.run_initial(job)
        options = I2MROptions(filter_threshold=0.001, max_iterations=25)
        for i in range(0, len(records), self.BATCH):
            engine.run_incremental(
                IterativeJob(PageRank(), graph, num_partitions=4,
                             max_iterations=25),
                records[i:i + self.BATCH], prev, options,
            )
        encoded = serialization.encode(sorted(prev.state.items()))
        prev.cleanup()
        return encoded

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_pagerank_byte_identical_across_executors(self, executor):
        graph, consumer, _ = _pagerank_setup(executor=executor)
        records, _ = _recorded_web_deltas(graph)
        expected = self._manual_state_bytes(graph, records)
        with ContinuousPipeline(
            ReplaySource(records, rate=2.0), CountBatcher(self.BATCH), consumer
        ) as pipe:
            result = pipe.run()
            streamed = serialization.encode(sorted(consumer.state().items()))
        assert streamed == expected
        assert result.num_records == len(records)

    def test_wordcount_one_step_pipeline(self):
        tweets = zipf_tweets(150, seed=5)
        cluster, dfs = fresh_cluster()
        dfs.write("/tweets", sorted(tweets.tweets.items()))
        conf = JobConf(name="wc", mapper=WordCountMapper,
                       reducer=WordCountReducer, inputs=["/tweets"],
                       output="/counts", num_reducers=3)
        consumer = OneStepStreamConsumer.from_initial(
            cluster, dfs, conf, accumulator=True
        )
        source = evolving_text_source(
            tweets, fraction=0.1, generations=3, period_s=60.0, seed=9
        )
        with ContinuousPipeline(source, CountBatcher(6), consumer) as pipe:
            pipe.run()
            streamed = consumer.state()
            final_docs = sorted(source.current_dataset.tweets.items())
            # The streamed accumulator equals a from-scratch recount.
            assert streamed == reference_wordcount(final_docs)
            # And the refreshed DFS output file agrees.
            assert dict(dfs.read_all("/counts")) == streamed
            # Per-batch staging files are scratch, not a leak.
            assert dfs.ls("/stream/delta") == []

    def test_dfs_tail_matches_replay(self):
        """Tailing staged delta files == replaying the recorded stream."""
        graph = powerlaw_web_graph(100, 5.0, seed=8)
        records, _ = _recorded_web_deltas(graph, rounds=2, seed=70)

        def run(source):
            cluster, dfs2 = fresh_cluster()
            job = IterativeJob(PageRank(), graph, num_partitions=4,
                               max_iterations=60, epsilon=1e-6)
            consumer = IterativeStreamConsumer.from_initial(
                cluster, dfs2, job, I2MROptions(max_iterations=25)
            )
            src = source(dfs2)
            with ContinuousPipeline(src, CountBatcher(11), consumer) as pipe:
                pipe.run()
                return serialization.encode(sorted(consumer.state().items()))

        def tail_source(dfs2):
            half = len(records) // 2
            dfs2.write("/deltas/0", delta_to_dfs_records(records[:half]))
            dfs2.write("/deltas/1", delta_to_dfs_records(records[half:]))
            return DFSTailSource(dfs2, "/deltas/")

        assert run(lambda dfs2: ReplaySource(records, rate=5.0)) == run(tail_source)


# --------------------------------------------------------------------- #
# fallback reporting (P-delta auto-off seen from the stream)            #
# --------------------------------------------------------------------- #


class TestFallbackReporting:
    def test_big_batch_trips_pdelta_autooff(self):
        graph = powerlaw_web_graph(80, 5.0, seed=2)
        cluster, dfs = fresh_cluster()
        job = IterativeJob(PageRank(), graph, num_partitions=4,
                           max_iterations=60, epsilon=1e-6)
        consumer = IterativeStreamConsumer.from_initial(
            cluster, dfs, job,
            I2MROptions(max_iterations=10, pdelta_threshold=0.05,
                        epsilon=1e-6),
        )
        # One huge batch touching most of the graph: P-delta explodes.
        delta = mutate_web_graph(graph, 0.9, seed=77)
        with ContinuousPipeline(
            ReplaySource(delta.records, rate=100.0),
            CountBatcher(10 ** 6), consumer,
        ) as pipe:
            result = pipe.run()
        assert result.num_batches == 1
        assert result.batches[0].fell_back
        assert result.num_fallbacks == 1


# --------------------------------------------------------------------- #
# the experiment                                                        #
# --------------------------------------------------------------------- #


class TestStreamLatencyExperiment:
    def test_full_sweep_shape(self):
        from repro.experiments.stream_latency import run_stream_latency

        result = run_stream_latency(scale="test")
        assert len(result.rows) == 12  # 3 workloads x 4 policies
        by_workload = {}
        for row in result.rows:
            by_workload.setdefault(row[0], []).append(row)
        assert set(by_workload) == {"pagerank", "kmeans", "wordcount"}
        # K-means replicates state: P-delta trips and batches fall back.
        assert all(row[7] > 0 for row in by_workload["kmeans"])
        # Fine-grain workloads never fall back at this change rate.
        assert all(row[7] == 0 for row in by_workload["pagerank"])
        assert all(row[7] == 0 for row in by_workload["wordcount"])
        # Latency is positive and batches cover the stream.
        assert all(row[4] > 0 for row in result.rows)

    def test_deterministic(self):
        from repro.experiments.stream_latency import run_stream_latency

        first = run_stream_latency(scale="test", workloads=("wordcount",))
        second = run_stream_latency(scale="test", workloads=("wordcount",))
        assert first.rows == second.rows


# --------------------------------------------------------------------- #
# misc API                                                              #
# --------------------------------------------------------------------- #


class TestMiscAPI:
    def test_delta_source_is_abstract(self):
        with pytest.raises(NotImplementedError):
            list(DeltaSource())

    def test_arrived_record_is_a_pair(self):
        item = ArrivedRecord(insert(1, "x"), 2.0)
        assert item.record.key == 1 and item.arrival_s == 2.0

    def test_top_level_exports(self):
        import repro

        assert repro.ContinuousPipeline is ContinuousPipeline
        assert repro.DFSTailSource is DFSTailSource


# --------------------------------------------------------------------- #
# resilience: retry-then-dead-letter                                    #
# --------------------------------------------------------------------- #


class _FlakyConsumer(StreamConsumer):
    """Fixed-cost consumer that fails scripted batches.

    ``fail_plan`` maps a batch ordinal (0-based, counting each distinct
    batch once) to how many attempts should fail before one succeeds;
    ``None`` means every attempt fails (a poison batch).
    """

    def __init__(self, processing_s: float, fail_plan: dict):
        self.processing_s = processing_s
        self.fail_plan = dict(fail_plan)
        self.batches = []
        self.attempts: dict = {}
        self._ordinal = -1
        self._last_key = None

    def process_batch(self, records):
        key = tuple(r.key for r in records)
        if key != self._last_key:
            self._last_key = key
            self._ordinal += 1
        ordinal = self._ordinal
        self.attempts[ordinal] = self.attempts.get(ordinal, 0) + 1
        budget = self.fail_plan.get(ordinal, 0)
        if budget is None or self.attempts[ordinal] <= budget:
            raise StreamError(f"batch {ordinal} attempt {self.attempts[ordinal]}")
        self.batches.append(list(records))
        return BatchOutcome(processing_s=self.processing_s)

    def state(self):
        return {}


class TestPipelineResilience:
    def _run(self, fail_plan, batch_retries, num_records=6):
        records = [insert(i, i) for i in range(num_records)]
        consumer = _FlakyConsumer(1.0, fail_plan)
        pipe = ContinuousPipeline(
            ReplaySource(records, rate=100.0),
            CountBatcher(2),
            consumer,
            batch_retries=batch_retries,
        )
        return pipe, pipe.run(), consumer

    def test_transient_consumer_failure_is_retried(self):
        pipe, result, consumer = self._run({1: 2}, batch_retries=3)
        assert [len(b) for b in consumer.batches] == [2, 2, 2]
        flaky = result.batches[1]
        assert flaky.retries == 2
        assert flaky.failures == 2
        assert not flaky.dead_lettered
        assert flaky.retry_backoff_s > 0.0
        assert flaky.done_s == flaky.start_s + flaky.retry_backoff_s + 1.0
        clean = result.batches[0]
        assert clean.retries == 0 and clean.retry_backoff_s == 0.0
        assert result.num_retries == 2
        assert result.num_failures == 2
        assert result.num_dead_lettered == 0
        assert pipe.dead_letters == []

    def test_poison_batch_is_dead_lettered_and_stream_survives(self):
        pipe, result, consumer = self._run({1: None}, batch_retries=2)
        # The poison batch was skipped; batches 0 and 2 still processed.
        assert [len(b) for b in consumer.batches] == [2, 2]
        poison = result.batches[1]
        assert poison.dead_lettered
        assert poison.processing_s == 0.0
        assert poison.failures == 3      # 1 first attempt + 2 retries
        assert poison.retries == 2
        assert poison.retry_backoff_s > 0.0
        assert len(pipe.dead_letters) == 1
        letter = pipe.dead_letters[0]
        assert letter.batch_index == 1
        assert letter.attempts == 3
        assert "StreamError" in letter.cause
        assert result.num_dead_lettered == 1
        # The stream's clock kept moving past the poison batch.
        assert result.batches[2].done_s > poison.done_s

    def test_fail_fast_without_retry_budget(self):
        with pytest.raises(StreamError, match="batch 1 attempt 1"):
            self._run({1: 1}, batch_retries=0)

    def test_fault_free_metrics_identical_with_and_without_budget(self):
        _, fail_fast, _ = self._run({}, batch_retries=0)
        _, resilient, _ = self._run({}, batch_retries=5)
        assert fail_fast.batches == resilient.batches

    def test_retry_backoff_is_deterministic(self):
        _, first, _ = self._run({0: 1, 2: 2}, batch_retries=3)
        _, second, _ = self._run({0: 1, 2: 2}, batch_retries=3)
        assert [b.retry_backoff_s for b in first.batches] == [
            b.retry_backoff_s for b in second.batches
        ]
        assert [b.done_s for b in first.batches] == [b.done_s for b in second.batches]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="batch_retries"):
            ContinuousPipeline(
                ReplaySource([], rate=1.0), CountBatcher(2),
                _FlakyConsumer(1.0, {}), batch_retries=-1,
            )


# --------------------------------------------------------------------- #
# delta netting: batches that cancel to zero schedule zero tasks        #
# --------------------------------------------------------------------- #


class TestDeltaNetting:
    def test_net_delta_records_cancels_matched_pairs(self):
        recs = [
            insert(1, "a"),
            delete(1, "a"),
            insert(2, "b"),
            delete(3, "c"),
            insert(3, "c"),
        ]
        survivors = net_delta_records(recs)
        assert [(r.key, r.value, r.op) for r in survivors] == [
            (2, "b", recs[2].op)
        ]

    def test_net_delta_records_keeps_order_and_multiplicity(self):
        recs = [
            insert(1, "a"),
            insert(1, "a"),
            delete(1, "a"),  # nets +1: the *first* insert survives
            insert(2, "b"),
        ]
        survivors = net_delta_records(recs)
        assert survivors == [recs[0], recs[3]]
        # A net deletion keeps the delete record, not the insert.
        down = net_delta_records([insert(4, "x"), delete(4, "x"), delete(4, "x")])
        assert len(down) == 1 and down[0].op.name == "DELETE"

    def test_net_zero_batch_schedules_zero_map_tasks(self):
        graph, consumer, _ = _pagerank_setup()
        consumer.net_deltas = True
        before = serialization.encode(sorted(consumer.state().items()))
        noop = [insert(999, ((1,), "")), delete(999, ((1,), ""))]
        with ContinuousPipeline(
            ReplaySource(noop, rate=100.0), CountBatcher(2), consumer
        ) as pipe:
            result = pipe.run()
            after = serialization.encode(sorted(consumer.state().items()))
        assert result.num_batches == 1
        batch = result.batches[0]
        assert batch.map_tasks == 0
        assert batch.processing_s == 0.0
        assert batch.iterations == 0
        assert result.total_map_tasks == 0
        # The preserved state never saw the engine: byte-identical.
        assert after == before

    def test_real_batch_reports_scheduled_map_tasks(self):
        graph, consumer, _ = _pagerank_setup()
        consumer.net_deltas = True
        records, _ = _recorded_web_deltas(graph, rounds=1)
        with ContinuousPipeline(
            ReplaySource(records, rate=100.0),
            CountBatcher(len(records)),
            consumer,
        ) as pipe:
            result = pipe.run()
        assert result.num_batches == 1
        assert result.batches[0].map_tasks > 0
        assert result.total_map_tasks == result.batches[0].map_tasks

    def test_netting_off_by_default_still_processes_noop_batch(self):
        graph, consumer, _ = _pagerank_setup()
        assert consumer.net_deltas is False
        noop = [insert(999, ((1,), "")), delete(999, ((1,), ""))]
        outcome = consumer.process_batch(noop)
        # Without netting the engine runs (and charges startup time)
        # even though the delta is a logical no-op.
        assert outcome.processing_s > 0.0
        consumer.close()

    def test_one_step_net_zero_batch_skips_staging(self):
        tweets = zipf_tweets(60, seed=5)
        cluster, dfs = fresh_cluster()
        dfs.write("/tweets", sorted(tweets.tweets.items()))
        conf = JobConf(name="wc", mapper=WordCountMapper,
                       reducer=WordCountReducer, inputs=["/tweets"],
                       output="/counts", num_reducers=2)
        consumer = OneStepStreamConsumer.from_initial(
            cluster, dfs, conf, net_deltas=True
        )
        before = consumer.output_records()
        noop = [insert(7, "hello world"), delete(7, "hello world")]
        outcome = consumer.process_batch(noop)
        assert outcome.processing_s == 0.0
        assert outcome.map_tasks == 0
        # No staging file was ever written for the netted-out batch.
        assert dfs.ls("/stream/delta") == []
        assert consumer.output_records() == before
        consumer.close()
