"""End-to-end integration: a multi-generation evolving pipeline where all
execution systems must stay in agreement with the exact reference."""

from __future__ import annotations

import pytest

from repro.algorithms.pagerank import PageRank
from repro.baselines.haloop import HaLoopDriver
from repro.baselines.plainmr import PlainMRDriver
from repro.baselines.spark import SparkLikeDriver
from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster


class TestEvolvingPipeline:
    """Three crawl generations; i2MapReduce's refreshed fixpoints must
    track what every recomputation system produces from scratch."""

    def test_three_generations_agree(self):
        graph = powerlaw_web_graph(250, 5, seed=17)
        algorithm = PageRank()

        cluster, dfs = fresh_cluster(seed=17)
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(algorithm, graph, num_partitions=4,
                           max_iterations=60, epsilon=1e-8)
        _, preserved = engine.run_initial(job)

        for generation in range(3):
            delta = mutate_web_graph(graph, 0.08, seed=50 + generation)
            graph = delta.new_graph
            incr = engine.run_incremental(
                IterativeJob(algorithm, graph, num_partitions=4,
                             max_iterations=120),
                delta.records,
                preserved,
                I2MROptions(filter_threshold=1e-11, max_iterations=120),
            )
            reference = algorithm.reference_from(graph, {}, 300)
            assert set(incr.state) == set(reference)
            worst = max(abs(incr.state[k] - reference[k]) for k in reference)
            assert worst < 1e-3, f"generation {generation}: {worst}"

        # Final generation cross-checked against every recomputation system.
        for driver_cls in (PlainMRDriver, HaLoopDriver, SparkLikeDriver):
            c2, d2 = fresh_cluster(seed=17)
            recomp = driver_cls(c2, d2).run(
                algorithm, graph, max_iterations=200, epsilon=1e-8
            )
            worst = max(
                abs(incr.state[k] - recomp.state[k]) for k in recomp.state
            )
            assert worst < 1e-3, driver_cls.__name__
        preserved.cleanup()

    def test_itermr_recomputation_tracks_incremental(self):
        graph = powerlaw_web_graph(200, 5, seed=23)
        algorithm = PageRank()

        cluster, dfs = fresh_cluster(seed=23)
        engine = I2MREngine(cluster, dfs)
        _, preserved = engine.run_initial(
            IterativeJob(algorithm, graph, num_partitions=4,
                         max_iterations=60, epsilon=1e-8)
        )
        delta = mutate_web_graph(graph, 0.05, seed=31)
        incr = engine.run_incremental(
            IterativeJob(algorithm, delta.new_graph, num_partitions=4,
                         max_iterations=100),
            delta.records,
            preserved,
            I2MROptions(filter_threshold=1e-11, max_iterations=100),
        )

        c2, d2 = fresh_cluster(seed=23)
        itermr = IterMREngine(c2, d2).run(
            IterativeJob(algorithm, delta.new_graph, num_partitions=4,
                         max_iterations=150, epsilon=1e-8)
        )
        worst = max(abs(incr.state[k] - itermr.state[k]) for k in itermr.state)
        assert worst < 1e-3
        preserved.cleanup()

    def test_incremental_is_cheaper_than_recomputation(self):
        graph = powerlaw_web_graph(300, 6, seed=29, payload_bytes=100)
        algorithm = PageRank()

        cluster, dfs = fresh_cluster(seed=29)
        engine = I2MREngine(cluster, dfs)
        _, preserved = engine.run_initial(
            IterativeJob(algorithm, graph, num_partitions=4,
                         max_iterations=40, epsilon=1e-6)
        )
        delta = mutate_web_graph(graph, 0.05, seed=37)
        incr = engine.run_incremental(
            IterativeJob(algorithm, delta.new_graph, num_partitions=4,
                         max_iterations=10),
            delta.records,
            preserved,
            I2MROptions(filter_threshold=0.01, max_iterations=10),
        )

        c2, d2 = fresh_cluster(seed=29)
        plain = PlainMRDriver(c2, d2).run(
            algorithm, delta.new_graph,
            initial_state=dict(preserved.state), max_iterations=10,
        )
        assert incr.total_time < plain.total_time
        preserved.cleanup()
