"""Unit tests for the Cluster container."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.cluster.scheduler import TaskSpec


class TestCluster:
    def test_workers_enumerated(self):
        cluster = Cluster(num_workers=5)
        assert cluster.workers == [0, 1, 2, 3, 4]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)

    def test_replica_choice_distinct_and_bounded(self):
        cluster = Cluster(num_workers=3, seed=1)
        for _ in range(20):
            replicas = cluster.pick_replica_workers(5)
            assert len(replicas) == 3  # capped at cluster size
            assert len(set(replicas)) == 3

    def test_seeded_rng_reproducible(self):
        a = Cluster(num_workers=8, seed=11).fresh_rng(1).randint(0, 1000, 5)
        b = Cluster(num_workers=8, seed=11).fresh_rng(1).randint(0, 1000, 5)
        assert list(a) == list(b)

    def test_fresh_rng_salt_independent(self):
        cluster = Cluster(num_workers=8, seed=11)
        a = cluster.fresh_rng(1).randint(0, 10**6)
        b = cluster.fresh_rng(2).randint(0, 10**6)
        assert a != b

    def test_run_tasks_includes_overhead(self):
        cost = CostModel(task_overhead_s=1.0)
        cluster = Cluster(num_workers=2, cost_model=cost)
        result = cluster.run_tasks([TaskSpec("t", 2.0)])
        assert result.elapsed_s == pytest.approx(3.0)
        bare = cluster.run_tasks([TaskSpec("t", 2.0)], include_task_overhead=False)
        assert bare.elapsed_s == pytest.approx(2.0)

    def test_custom_cost_model_attached(self):
        cost = CostModel(net_bw=1.0)
        assert Cluster(num_workers=2, cost_model=cost).cost_model.net_bw == 1.0
