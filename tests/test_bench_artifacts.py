"""The committed ``BENCH_*.json`` perf record is write-gated.

A plain ``pytest`` sweep collects ``benchmarks/`` alongside the tier-1
suite, usually on a loaded machine; if those runs wrote the repo-root
artifacts, every test run would overwrite the repo's performance record
with noisy numbers.  ``benchmarks.conftest.bench_out_path`` therefore
only returns the repo-root path when ``REPRO_BENCH_WRITE`` is truthy
(set by ``tools/bench_report.py --run`` and the CI bench-smoke job) and
otherwise redirects into the git-ignored ``.bench_scratch/``.
"""

from __future__ import annotations

import os

from benchmarks.conftest import bench_out_path

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_default_run_writes_to_scratch(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_WRITE", raising=False)
    path = bench_out_path("BENCH_hotpaths.json")
    assert os.path.dirname(path) == os.path.join(_ROOT, ".bench_scratch")
    assert os.path.isdir(os.path.dirname(path))


def test_falsy_knob_writes_to_scratch(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WRITE", "0")
    path = bench_out_path("BENCH_workset.json")
    assert os.path.dirname(path) == os.path.join(_ROOT, ".bench_scratch")


def test_explicit_knob_writes_to_repo_root(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WRITE", "1")
    assert bench_out_path("BENCH_sharding.json") == os.path.join(
        _ROOT, "BENCH_sharding.json"
    )


def test_scratch_dir_is_git_ignored():
    with open(os.path.join(_ROOT, ".gitignore")) as fh:
        assert ".bench_scratch/" in fh.read()
