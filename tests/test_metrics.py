"""Tests for stage-time and counter containers."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import Counters, JobMetrics, StageTimes


class TestStageTimes:
    def test_total_sums_all_stages(self):
        times = StageTimes(startup=1, map=2, shuffle=3, sort=4, reduce=5,
                           merge=6, checkpoint=7)
        assert times.total == pytest.approx(28)

    def test_add_accumulates(self):
        a = StageTimes(map=1.0)
        a.add(StageTimes(map=2.0, reduce=3.0))
        assert a.map == pytest.approx(3.0)
        assert a.reduce == pytest.approx(3.0)

    def test_plus_operator(self):
        c = StageTimes(map=1.0) + StageTimes(shuffle=2.0)
        assert c.map == pytest.approx(1.0)
        assert c.shuffle == pytest.approx(2.0)

    def test_as_dict_includes_total(self):
        d = StageTimes(map=1.5).as_dict()
        assert d["map"] == pytest.approx(1.5)
        assert d["total"] == pytest.approx(1.5)

    def test_scaled(self):
        s = StageTimes(map=2.0, reduce=4.0).scaled(0.5)
        assert s.map == pytest.approx(1.0)
        assert s.reduce == pytest.approx(2.0)


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("records", 5)
        c.add("records", 3)
        assert c.get("records") == 8

    def test_default_zero(self):
        assert Counters().get("missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_items_sorted(self):
        c = Counters()
        c.add("zeta")
        c.add("alpha")
        assert [name for name, _ in c.items()] == ["alpha", "zeta"]

    def test_as_dict_is_copy(self):
        c = Counters()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestJobMetrics:
    def test_merge_combines_both(self):
        a = JobMetrics()
        a.times.map = 1.0
        a.counters.add("n", 1)
        b = JobMetrics()
        b.times.map = 2.0
        b.counters.add("n", 2)
        a.merge(b)
        assert a.times.map == pytest.approx(3.0)
        assert a.counters.get("n") == 3
        assert a.total_time == pytest.approx(3.0)
