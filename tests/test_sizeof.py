"""The size estimator must agree exactly with the real binary encoder.

Simulated I/O charges come from the estimator while the MRBG-Store
measures genuine encoded bytes — any disagreement would silently skew
every experiment, so this invariant gets a property test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import encode, encode_record
from repro.common.sizeof import record_size, records_size, value_size

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
    ),
    max_leaves=16,
)


class TestExactness:
    @given(_values)
    @settings(max_examples=200)
    def test_value_size_matches_encoder(self, value):
        assert value_size(value) == len(encode(value))

    @given(_values, _values)
    @settings(max_examples=100)
    def test_record_size_matches_encoder(self, key, value):
        assert record_size(key, value) == len(encode_record(key, value))


class TestBulk:
    def test_records_size_sums(self):
        pairs = [(i, f"value-{i}") for i in range(10)]
        assert records_size(pairs) == sum(record_size(k, v) for k, v in pairs)

    def test_empty_stream(self):
        assert records_size([]) == 0

    def test_unknown_type_gets_flat_charge(self):
        # Never raises for simulation-only values.
        assert value_size(object()) == 64
