"""Tests for the §6.2 skew-mitigation extension."""

from __future__ import annotations

import pytest

from repro.cluster.scheduler import TaskSpec
from repro.cluster.skew import schedule_with_skew_mitigation


def specs(costs):
    return [TaskSpec(str(i), c) for i, c in enumerate(costs)]


class TestSkewMitigation:
    def test_splits_dominant_straggler(self):
        # One 20 s task among 1 s tasks on 4 workers.
        result = schedule_with_skew_mitigation(
            specs([20.0] + [1.0] * 6), num_workers=4,
            repartition_overhead_s=0.5,
        )
        assert result.mitigated
        assert result.straggler_task == "0"
        assert result.elapsed_s < result.base.elapsed_s
        assert result.saved_s > 0

    def test_balanced_load_not_mitigated(self):
        result = schedule_with_skew_mitigation(
            specs([2.0] * 8), num_workers=4
        )
        assert not result.mitigated
        assert result.elapsed_s == result.base.elapsed_s

    def test_overhead_can_cancel_benefit(self):
        # Tiny skew + huge repartition cost: mitigation declined.
        result = schedule_with_skew_mitigation(
            specs([2.2, 2.0, 2.0, 2.0]), num_workers=4,
            repartition_overhead_s=10.0,
        )
        assert not result.mitigated

    def test_min_benefit_threshold(self):
        result = schedule_with_skew_mitigation(
            specs([5.0, 1.0, 1.0, 1.0]), num_workers=4,
            repartition_overhead_s=0.0, min_benefit_s=100.0,
        )
        assert not result.mitigated

    def test_single_worker_noop(self):
        result = schedule_with_skew_mitigation(specs([5.0, 1.0]), num_workers=1)
        assert not result.mitigated

    def test_empty_stage(self):
        result = schedule_with_skew_mitigation([], num_workers=4)
        assert not result.mitigated
        assert result.elapsed_s == 0.0

    def test_mitigated_never_slower(self):
        for costs in ([9, 1, 1, 1], [4, 4, 1, 1, 1, 1], [30] + [2] * 10):
            result = schedule_with_skew_mitigation(
                specs([float(c) for c in costs]), num_workers=4,
                repartition_overhead_s=0.2,
            )
            assert result.elapsed_s <= result.base.elapsed_s + 1e-9
