"""Tests for dependency-aware data partitioning (§4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRank
from repro.algorithms.kmeans import Kmeans, STATE_KEY
from repro.common.hashing import partition_for
from repro.datasets.graphs import powerlaw_web_graph
from repro.datasets.points import gaussian_points
from repro.iterative.partitioning import (
    partition_job_cost,
    partition_structure,
    state_bytes_by_partition,
    state_partition,
)
from repro.cluster.costmodel import CostModel


@pytest.fixture
def pagerank_parts():
    graph = powerlaw_web_graph(120, 4, seed=2)
    algorithm = PageRank()
    records = algorithm.structure_records(graph)
    return algorithm, records, partition_structure(algorithm, records, 4)


class TestCoPartitioning:
    def test_interdependent_pairs_colocated(self, pagerank_parts):
        algorithm, records, parts = pagerank_parts
        # Structure pair (SK, SV) lives in hash(project(SK)) — the same
        # partition as its state kv-pair hash(DK).
        for p in range(4):
            for dk, pairs in parts.iter_groups(p):
                assert state_partition(dk, 4) == p
                for sk, _ in pairs:
                    assert algorithm.project(sk) == dk

    def test_all_pairs_present(self, pagerank_parts):
        _, records, parts = pagerank_parts
        assert parts.total_pairs() == len(records)

    def test_groups_sorted_by_dk(self, pagerank_parts):
        _, _, parts = pagerank_parts
        for p in range(4):
            dks = [dk for dk, _ in parts.iter_groups(p)]
            assert dks == sorted(dks)

    def test_bytes_tracked(self, pagerank_parts):
        _, records, parts = pagerank_parts
        from repro.common.sizeof import records_size

        assert sum(parts.structure_bytes) == records_size(records)


class TestAllToOne:
    def test_replicated_flag(self):
        points = gaussian_points(60, dim=3, k=3, seed=1)
        algorithm = Kmeans(k=3, dim=3)
        parts = partition_structure(
            algorithm, algorithm.structure_records(points), 4
        )
        assert parts.replicated_state
        # Every partition's single group is the unique state key.
        for p in range(4):
            for dk, _ in parts.iter_groups(p):
                assert dk == STATE_KEY

    def test_points_spread_across_partitions(self):
        points = gaussian_points(200, dim=3, k=3, seed=1)
        algorithm = Kmeans(k=3, dim=3)
        parts = partition_structure(
            algorithm, algorithm.structure_records(points), 4
        )
        assert min(parts.num_pairs) > 20

    def test_state_bytes_replicated(self):
        sizes = state_bytes_by_partition({1: "abc"}, 3, replicated=True)
        assert len(set(sizes)) == 1
        assert sizes[0] > 0


class TestMutation:
    def test_insert_then_delete_roundtrip(self, pagerank_parts):
        algorithm, _, parts = pagerank_parts
        before_pairs = parts.total_pairs()
        before_bytes = sum(parts.structure_bytes)
        p = parts.insert_pair(algorithm, 999, ((1, 2), ""))
        assert parts.total_pairs() == before_pairs + 1
        assert sum(parts.structure_bytes) > before_bytes
        q = parts.delete_pair(algorithm, 999, ((1, 2), ""))
        assert p == q
        assert parts.total_pairs() == before_pairs
        assert sum(parts.structure_bytes) == before_bytes

    def test_delete_missing_raises(self, pagerank_parts):
        algorithm, _, parts = pagerank_parts
        with pytest.raises(KeyError):
            parts.delete_pair(algorithm, 424242, ((1,), ""))

    def test_delete_matches_value(self, pagerank_parts):
        algorithm, records, parts = pagerank_parts
        sk, sv = records[0]
        with pytest.raises(KeyError):
            parts.delete_pair(algorithm, sk, ((123456,), "wrong"))
        parts.delete_pair(algorithm, sk, sv)  # correct value succeeds


class TestPartitionJobCost:
    def test_positive_and_monotone(self):
        cost = CostModel()
        small = partition_job_cost(cost, 4, 10**6, 1000, 4)
        large = partition_job_cost(cost, 4, 10**8, 100_000, 4)
        assert 0 < small < large

    def test_more_workers_cheaper(self):
        cost = CostModel()
        few = partition_job_cost(cost, 2, 10**8, 100_000, 4)
        many = partition_job_cost(cost, 16, 10**8, 100_000, 4)
        assert many < few

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            partition_job_cost(CostModel(), 0, 100, 10, 4)


class TestStateBytes:
    def test_partitioned_sum_matches_total(self):
        from repro.common.sizeof import record_size

        state = {i: float(i) for i in range(50)}
        sizes = state_bytes_by_partition(state, 4, replicated=False)
        assert sum(sizes) == sum(record_size(k, v) for k, v in state.items())

    @given(st.dictionaries(st.integers(min_value=0, max_value=1000),
                           st.floats(allow_nan=False), max_size=40))
    @settings(max_examples=50)
    def test_every_key_lands_in_its_hash_partition(self, state):
        n = 5
        sizes = state_bytes_by_partition(state, n, replicated=False)
        assert len(sizes) == n
        # Rebuild per-partition sums independently.
        from repro.common.sizeof import record_size

        expected = [0] * n
        for dk, dv in state.items():
            expected[partition_for(dk, n)] += record_size(dk, dv)
        assert sizes == expected
