"""Tests for fault injection, recovery timing and timelines (§6)."""

from __future__ import annotations

import pytest

from repro.algorithms.pagerank import PageRank
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import StageTimes
from repro.datasets.graphs import powerlaw_web_graph
from repro.faults.context import FaultContext
from repro.faults.injection import FaultInjector, FaultSpec
from repro.faults.timeline import TaskEvent, Timeline
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster


class TestFaultSpec:
    def test_valid(self):
        FaultSpec(iteration=0, stage="map", task_index=3, at_fraction=0.5)

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="combine", task_index=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="map", task_index=0, at_fraction=1.5)

    def test_negative_indices(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=-1, stage="map", task_index=0)


class TestInjector:
    def test_lookup(self):
        injector = FaultInjector([FaultSpec(2, "map", 7)])
        assert injector.fault_for(2, "map", 7) is not None
        assert injector.fault_for(2, "map", 8) is None
        assert injector.fault_for(3, "map", 7) is None
        assert injector.num_faults() == 1

    def test_worker_failure_expands(self):
        # §6.1 case (iii): a worker failure kills both co-located tasks.
        injector = FaultInjector([FaultSpec(1, "worker", 4)])
        assert injector.fault_for(1, "map", 4) is not None
        assert injector.fault_for(1, "reduce", 4) is not None
        assert injector.num_faults() == 2

    def test_random_generator_deterministic(self):
        a = FaultInjector.random(5, num_iterations=8, num_tasks=16, seed=3)
        b = FaultInjector.random(5, num_iterations=8, num_tasks=16, seed=3)
        assert a.num_faults() == b.num_faults()
        for it in range(8):
            for stage in ("map", "reduce"):
                for task in range(16):
                    fa = a.fault_for(it, stage, task)
                    fb = b.fault_for(it, stage, task)
                    assert (fa is None) == (fb is None)


class TestRecoveryTiming:
    def test_detection_on_heartbeat_boundary(self):
        cluster = Cluster(num_workers=2)
        injector = FaultInjector([FaultSpec(0, "map", 0, at_fraction=0.5)])
        context = FaultContext(injector, checkpoint_reload_s=2.0)
        times = context.apply(
            map_task_costs=[10.0, 10.0],
            reduce_task_costs=[1.0, 1.0],
            times=StageTimes(map=10.0, reduce=1.0),
            cluster=cluster,
        )
        [event] = context.timeline.failures()
        # Fails at 5.0; next 3 s heartbeat is 6.0; +2 s reload.
        assert event.failed_at == pytest.approx(5.0)
        assert event.recovered_at == pytest.approx(8.0)
        assert event.recovery_time == pytest.approx(3.0)
        # The task re-executes fully after recovery.
        assert event.end == pytest.approx(18.0)
        assert times.map == pytest.approx(18.0)

    def test_unaffected_stages_unchanged(self):
        cluster = Cluster(num_workers=2)
        context = FaultContext(FaultInjector([]))
        base = StageTimes(map=4.0, shuffle=1.0, sort=0.5, reduce=2.0)
        times = context.apply([4.0, 4.0], [2.0, 2.0], base, cluster)
        assert times.shuffle == pytest.approx(1.0)
        assert times.sort == pytest.approx(0.5)
        assert times.map == pytest.approx(4.0)

    def test_clock_advances_across_iterations(self):
        cluster = Cluster(num_workers=2)
        context = FaultContext(FaultInjector([]))
        base = StageTimes(map=2.0, reduce=1.0)
        context.apply([2.0], [1.0], base, cluster)
        first_end = context.clock
        context.apply([2.0], [1.0], base, cluster)
        assert context.clock > first_end
        assert context.iteration == 2


class TestTimeline:
    def test_rows_and_stats(self):
        timeline = Timeline()
        timeline.add(TaskEvent("map-0", "map", 0, 0, 0.0, 5.0))
        timeline.add(
            TaskEvent("map-1", "map", 0, 1, 0.0, 12.0,
                      failed_at=3.0, recovered_at=6.0)
        )
        assert len(timeline.failures()) == 1
        assert timeline.max_recovery_time() == pytest.approx(3.0)
        assert timeline.duration() == pytest.approx(12.0)
        assert len(timeline.rows()) == 2

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.failures() == []
        assert timeline.max_recovery_time() == 0.0
        assert timeline.duration() == 0.0


class TestEngineIntegration:
    def _run(self, injector):
        graph = powerlaw_web_graph(150, 4, seed=2)
        cluster, dfs = fresh_cluster(seed=2)
        context = FaultContext(injector) if injector else None
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=8, max_iterations=4),
            fault_context=context,
        )
        return result, context

    def test_failures_do_not_change_results(self):
        clean, _ = self._run(None)
        injector = FaultInjector([
            FaultSpec(1, "map", 2, at_fraction=0.5),
            FaultSpec(2, "reduce", 5, at_fraction=0.3),
        ])
        faulted, context = self._run(injector)
        assert faulted.state == clean.state
        assert len(context.timeline.failures()) == 2

    def test_failures_add_time(self):
        clean, _ = self._run(None)
        injector = FaultInjector([FaultSpec(1, "map", 2, at_fraction=0.9)])
        faulted, _ = self._run(injector)
        assert faulted.total_time > clean.total_time

    def test_recovery_within_heartbeat_plus_reload(self):
        injector = FaultInjector([
            FaultSpec(0, "map", 1, at_fraction=0.4),
            FaultSpec(2, "reduce", 3, at_fraction=0.7),
        ])
        _, context = self._run(injector)
        heartbeat = 3.0
        for event in context.timeline.failures():
            assert event.recovery_time <= heartbeat + 2.0 + 1e-9

    def test_timeline_covers_all_tasks(self):
        injector = FaultInjector([])
        _, context = self._run(injector)
        # 8 map + 8 reduce tasks per iteration, 4 iterations.
        assert len(context.timeline.events) == 8 * 2 * 4


class TestStoreHookEdgeCases:
    """Edge cases of the durability crash hook (`FaultContext.store_hook`)."""

    def _context(self, *crashes):
        from repro.faults.injection import CrashPoint

        injector = FaultInjector()
        for crash in crashes:
            injector.add_crash_point(CrashPoint(**crash))
        return FaultContext(injector)

    def test_nbytes_none_still_tears(self):
        # nbytes is advisory (the store reports what it was writing);
        # a tearing directive must fire whether or not it is known.
        ctx = self._context(dict(point="wal-append", occurrence=0, byte_offset=7))
        hook = ctx.store_hook()
        directive = hook("wal-append", 0, None)
        assert directive is not None
        assert directive.byte_offset == 7
        assert ctx.store_crash_log == [("wal-append", 0, 0)]

    def test_multiple_directives_on_same_point(self):
        ctx = self._context(
            dict(point="wal-append", occurrence=0),
            dict(point="wal-append", occurrence=2, byte_offset=3),
        )
        hook = ctx.store_hook()
        first = hook("wal-append", 0, 64)
        second = hook("wal-append", 0, 64)
        third = hook("wal-append", 0, 64)
        assert first is not None and first.byte_offset is None
        assert second is None
        assert third is not None and third.byte_offset == 3
        assert ctx.store_crash_log == [
            ("wal-append", 0, 0),
            ("wal-append", 0, 2),
        ]

    def test_shards_count_independently(self):
        ctx = self._context(dict(point="pre-index-swap", shard=1, occurrence=0))
        hook = ctx.store_hook()
        assert hook("pre-index-swap", 0, 10) is None
        assert hook("pre-index-swap", 1, 10) is not None

    def test_hook_reuse_across_reset_stores(self):
        ctx = self._context(dict(point="wal-append", occurrence=0))
        hook = ctx.store_hook()
        assert hook("wal-append", 0, 16) is not None
        assert hook("wal-append", 0, 16) is None
        # A new crash/recover cycle: counters restart, the same hook
        # object fires again, and the log keeps the full history.
        ctx.reset_stores()
        assert hook("wal-append", 0, 16) is not None
        assert ctx.store_crash_log == [("wal-append", 0, 0), ("wal-append", 0, 0)]


class TestTaskHook:
    """The executor-side fault hook (`FaultContext.task_hook`)."""

    def _context(self, *faults):
        from repro.faults.injection import TaskFault

        injector = FaultInjector()
        for fault in faults:
            injector.add_task_fault(TaskFault(**fault))
        return FaultContext(injector)

    def test_occurrence_counting_and_log(self):
        ctx = self._context(
            dict(kind="transient", task_index=1, occurrence=1),
            dict(kind="slowdown", task_index=2, occurrence=0, slow_s=0.5),
        )
        hook = ctx.task_hook()
        assert hook(1) is None                       # occurrence 0: clean
        retry = hook(1)                              # occurrence 1: faults
        assert retry is not None and retry.kind == "transient"
        slow = hook(2)
        assert slow is not None and slow.slow_s == 0.5
        assert hook(0) is None
        assert ctx.task_fault_log == [(1, 1, "transient"), (2, 0, "slowdown")]

    def test_task_and_store_channels_are_independent(self):
        from repro.faults.injection import CrashPoint, TaskFault

        injector = FaultInjector()
        injector.add_crash_point(CrashPoint(point="wal-append", occurrence=0))
        injector.add_task_fault(TaskFault("transient", task_index=0, occurrence=0))
        ctx = FaultContext(injector)
        assert ctx.task_hook()(0) is not None
        assert ctx.store_hook()("wal-append", 0, 8) is not None
        assert injector.num_faults() == 2

    def test_invalid_task_fault_specs_rejected(self):
        from repro.faults.injection import TaskFault

        with pytest.raises(ValueError, match="kind"):
            TaskFault("melt", task_index=0)
        with pytest.raises(ValueError, match="non-negative"):
            TaskFault("transient", task_index=-1)
        with pytest.raises(ValueError, match="task_kind"):
            FaultSpec(0, "task", 0)
        with pytest.raises(ValueError, match="task stage only"):
            FaultSpec(0, "map", 0, task_kind="transient")
