"""Tests for fault injection, recovery timing and timelines (§6)."""

from __future__ import annotations

import pytest

from repro.algorithms.pagerank import PageRank
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import StageTimes
from repro.datasets.graphs import powerlaw_web_graph
from repro.faults.context import FaultContext
from repro.faults.injection import FaultInjector, FaultSpec
from repro.faults.timeline import TaskEvent, Timeline
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine

from tests.conftest import fresh_cluster


class TestFaultSpec:
    def test_valid(self):
        FaultSpec(iteration=0, stage="map", task_index=3, at_fraction=0.5)

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="combine", task_index=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, stage="map", task_index=0, at_fraction=1.5)

    def test_negative_indices(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=-1, stage="map", task_index=0)


class TestInjector:
    def test_lookup(self):
        injector = FaultInjector([FaultSpec(2, "map", 7)])
        assert injector.fault_for(2, "map", 7) is not None
        assert injector.fault_for(2, "map", 8) is None
        assert injector.fault_for(3, "map", 7) is None
        assert injector.num_faults() == 1

    def test_worker_failure_expands(self):
        # §6.1 case (iii): a worker failure kills both co-located tasks.
        injector = FaultInjector([FaultSpec(1, "worker", 4)])
        assert injector.fault_for(1, "map", 4) is not None
        assert injector.fault_for(1, "reduce", 4) is not None
        assert injector.num_faults() == 2

    def test_random_generator_deterministic(self):
        a = FaultInjector.random(5, num_iterations=8, num_tasks=16, seed=3)
        b = FaultInjector.random(5, num_iterations=8, num_tasks=16, seed=3)
        assert a.num_faults() == b.num_faults()
        for it in range(8):
            for stage in ("map", "reduce"):
                for task in range(16):
                    fa = a.fault_for(it, stage, task)
                    fb = b.fault_for(it, stage, task)
                    assert (fa is None) == (fb is None)


class TestRecoveryTiming:
    def test_detection_on_heartbeat_boundary(self):
        cluster = Cluster(num_workers=2)
        injector = FaultInjector([FaultSpec(0, "map", 0, at_fraction=0.5)])
        context = FaultContext(injector, checkpoint_reload_s=2.0)
        times = context.apply(
            map_task_costs=[10.0, 10.0],
            reduce_task_costs=[1.0, 1.0],
            times=StageTimes(map=10.0, reduce=1.0),
            cluster=cluster,
        )
        [event] = context.timeline.failures()
        # Fails at 5.0; next 3 s heartbeat is 6.0; +2 s reload.
        assert event.failed_at == pytest.approx(5.0)
        assert event.recovered_at == pytest.approx(8.0)
        assert event.recovery_time == pytest.approx(3.0)
        # The task re-executes fully after recovery.
        assert event.end == pytest.approx(18.0)
        assert times.map == pytest.approx(18.0)

    def test_unaffected_stages_unchanged(self):
        cluster = Cluster(num_workers=2)
        context = FaultContext(FaultInjector([]))
        base = StageTimes(map=4.0, shuffle=1.0, sort=0.5, reduce=2.0)
        times = context.apply([4.0, 4.0], [2.0, 2.0], base, cluster)
        assert times.shuffle == pytest.approx(1.0)
        assert times.sort == pytest.approx(0.5)
        assert times.map == pytest.approx(4.0)

    def test_clock_advances_across_iterations(self):
        cluster = Cluster(num_workers=2)
        context = FaultContext(FaultInjector([]))
        base = StageTimes(map=2.0, reduce=1.0)
        context.apply([2.0], [1.0], base, cluster)
        first_end = context.clock
        context.apply([2.0], [1.0], base, cluster)
        assert context.clock > first_end
        assert context.iteration == 2


class TestTimeline:
    def test_rows_and_stats(self):
        timeline = Timeline()
        timeline.add(TaskEvent("map-0", "map", 0, 0, 0.0, 5.0))
        timeline.add(
            TaskEvent("map-1", "map", 0, 1, 0.0, 12.0,
                      failed_at=3.0, recovered_at=6.0)
        )
        assert len(timeline.failures()) == 1
        assert timeline.max_recovery_time() == pytest.approx(3.0)
        assert timeline.duration() == pytest.approx(12.0)
        assert len(timeline.rows()) == 2

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.failures() == []
        assert timeline.max_recovery_time() == 0.0
        assert timeline.duration() == 0.0


class TestEngineIntegration:
    def _run(self, injector):
        graph = powerlaw_web_graph(150, 4, seed=2)
        cluster, dfs = fresh_cluster(seed=2)
        context = FaultContext(injector) if injector else None
        result = IterMREngine(cluster, dfs).run(
            IterativeJob(PageRank(), graph, num_partitions=8, max_iterations=4),
            fault_context=context,
        )
        return result, context

    def test_failures_do_not_change_results(self):
        clean, _ = self._run(None)
        injector = FaultInjector([
            FaultSpec(1, "map", 2, at_fraction=0.5),
            FaultSpec(2, "reduce", 5, at_fraction=0.3),
        ])
        faulted, context = self._run(injector)
        assert faulted.state == clean.state
        assert len(context.timeline.failures()) == 2

    def test_failures_add_time(self):
        clean, _ = self._run(None)
        injector = FaultInjector([FaultSpec(1, "map", 2, at_fraction=0.9)])
        faulted, _ = self._run(injector)
        assert faulted.total_time > clean.total_time

    def test_recovery_within_heartbeat_plus_reload(self):
        injector = FaultInjector([
            FaultSpec(0, "map", 1, at_fraction=0.4),
            FaultSpec(2, "reduce", 3, at_fraction=0.7),
        ])
        _, context = self._run(injector)
        heartbeat = 3.0
        for event in context.timeline.failures():
            assert event.recovery_time <= heartbeat + 2.0 + 1e-9

    def test_timeline_covers_all_tasks(self):
        injector = FaultInjector([])
        _, context = self._run(injector)
        # 8 map + 8 reduce tasks per iteration, 4 iterations.
        assert len(context.timeline.events) == 8 * 2 * 4
