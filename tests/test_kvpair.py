"""Tests for the kv-pair model: delta records, key ordering, grouping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.kvpair import (
    DeltaRecord,
    Op,
    delete,
    group_sorted,
    insert,
    merge_sorted_runs,
    record_sort_key,
    sort_key,
    sort_records,
    sorted_by_key,
    update,
)


class TestDeltaRecords:
    def test_insert_marker(self):
        rec = insert("k", "v")
        assert rec == DeltaRecord("k", "v", Op.INSERT)
        assert rec.op.value == "+"

    def test_delete_marker(self):
        rec = delete("k", "v")
        assert rec.op is Op.DELETE
        assert rec.op.value == "-"

    def test_update_is_delete_then_insert(self):
        first, second = update("k", "old", "new")
        assert first == delete("k", "old")
        assert second == insert("k", "new")


class TestSortKey:
    def test_numbers_order_naturally(self):
        keys = [3, 1.5, 2, -1]
        assert sorted(keys, key=sort_key) == [-1, 1.5, 2, 3]

    def test_strings_order_naturally(self):
        assert sorted(["b", "a", "c"], key=sort_key) == ["a", "b", "c"]

    def test_mixed_types_have_total_order(self):
        keys = ["b", 2, (1, 2), None, 1, "a", (1, 1)]
        ordered = sorted(keys, key=sort_key)
        # None < numbers < strings < tuples, each group internally sorted.
        assert ordered == [None, 1, 2, "a", "b", (1, 1), (1, 2)]

    def test_nested_tuples(self):
        keys = [(1, (2, 3)), (1, (2, 2))]
        assert sorted(keys, key=sort_key) == [(1, (2, 2)), (1, (2, 3))]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            sort_key({"a": 1})

    def test_bool_sorts_before_numbers(self):
        ordered = sorted([1, True, 0], key=sort_key)
        assert ordered[0] is True


class TestGroupSorted:
    def test_basic_grouping(self):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        assert list(group_sorted(pairs)) == [("a", [1, 2]), ("b", [3])]

    def test_empty(self):
        assert list(group_sorted([])) == []

    def test_single_group(self):
        assert list(group_sorted([("x", 1)])) == [("x", [1])]

    def test_values_keep_arrival_order(self):
        pairs = [("a", 3), ("a", 1), ("a", 2)]
        assert list(group_sorted(pairs)) == [("a", [3, 1, 2])]

    def test_sorted_by_key_then_group_covers_all(self):
        pairs = [(k, i) for i, k in enumerate("cabbagec")]
        grouped = dict(group_sorted(sorted_by_key(pairs)))
        assert sum(len(v) for v in grouped.values()) == len(pairs)


_keys = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=16),
    st.tuples(st.integers(), st.text(max_size=4)),
)


class TestProperties:
    @given(st.lists(_keys, max_size=50))
    @settings(max_examples=100)
    def test_sort_key_is_total_order(self, keys):
        # Sorting must not raise and must be stable/deterministic.
        once = sorted(keys, key=sort_key)
        twice = sorted(list(reversed(keys)), key=sort_key)
        assert [sort_key(k) for k in once] == [sort_key(k) for k in twice]

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9), st.integers()), max_size=60))
    @settings(max_examples=100)
    def test_group_sorted_partitions_input(self, pairs):
        ordered = sorted_by_key(pairs)
        grouped = list(group_sorted(ordered))
        # Keys strictly increase and every value is accounted for.
        keys = [k for k, _ in grouped]
        assert keys == sorted(set(keys))
        flat = [v for _, values in grouped for v in values]
        assert sorted(flat) == sorted(v for _, v in pairs)


class TestSortHelpers:
    """The shuffle's sort/merge helpers must order exactly like the
    reference ``sort_key``-keyed implementations, for every key mix."""

    KEY_STYLES = {
        "ints": lambda rng: rng.randrange(20),
        "floats": lambda rng: rng.random(),
        "strings": lambda rng: "k%d" % rng.randrange(12),
        "mixed_scalars": lambda rng: rng.choice(
            [None, True, False, 3, 2.5, "s", b"b"]
        ),
        "tuples": lambda rng: (rng.randrange(5), "x%d" % rng.randrange(4)),
        "bool_int_mix": lambda rng: rng.choice([True, False, 0, 1, 2]),
        "nested_tuples": lambda rng: ((rng.randrange(3),), rng.random() < 0.5),
        "ragged_tuples": lambda rng: tuple(range(rng.randrange(3))),
    }

    @pytest.mark.parametrize("style", sorted(KEY_STYLES))
    def test_sort_records_matches_reference(self, style):
        import random
        rng = random.Random(13)
        make = self.KEY_STYLES[style]
        records = [(make(rng), i) for i in range(200)]
        reference = sorted(records, key=lambda rec: sort_key(rec[0]))
        assert sort_records(records) == reference

    @pytest.mark.parametrize("style", sorted(KEY_STYLES))
    def test_merge_sorted_runs_matches_reference(self, style):
        import heapq
        import random
        rng = random.Random(29)
        make = self.KEY_STYLES[style]
        records = [(make(rng), i) for i in range(200)]
        runs = [sort_records(records[i::4]) for i in range(4)]
        reference = list(heapq.merge(*runs, key=lambda rec: sort_key(rec[0])))
        assert merge_sorted_runs(runs) == reference

    def test_merge_empty_and_single_run(self):
        assert merge_sorted_runs([]) == []
        assert merge_sorted_runs([[], []]) == []
        run = [(1, "a"), (2, "b")]
        merged = merge_sorted_runs([run, []])
        assert merged == run
        assert merged is not run  # caller owns the result

    def test_sort_records_stability(self):
        records = [(1, "first"), (1.0, "second"), (True, "bool"), (1, "third")]
        result = sort_records(records)
        # bool ranks below numbers; equal numeric keys keep input order.
        assert result == [(True, "bool"), (1, "first"), (1.0, "second"), (1, "third")]

    def test_sorted_by_key_still_sorts_pairs(self):
        pairs = [("b", 2), ("a", 1), ("c", 3)]
        assert sorted_by_key(pairs) == [("a", 1), ("b", 2), ("c", 3)]

    def test_record_sort_key(self):
        assert record_sort_key(("k", 1)) == sort_key("k")
