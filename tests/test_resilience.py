"""Task-level fault tolerance: the resilient executor and its wiring.

The contract under test is the robustness analogue of the executor
contract: injected task faults (transient failures, worker deaths,
stragglers) may cost retries, simulated backoff and degraded backends,
but they must never change what a run *computes* — outputs, counters
and simulated stage times stay byte-identical to the fault-free run,
across the serial/thread/process backends and across engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.common import config
from repro.cluster.scheduler import (
    ShardPlacement,
    ShardTaskSpec,
    reschedule_failed_tasks,
)
from repro.common.errors import RetriesExhausted
from repro.common.kvpair import Op
from repro.dfs.filesystem import DistributedFS
from repro.execution import (
    ExecutorSelector,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.faults import FaultContext, FaultInjector, FaultSpec, TaskFault
from repro.faults.injection import TaskFaultDirective
from repro.incremental.api import SumReducer
from repro.mapreduce.api import Mapper
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf
from repro.mrbgraph.graph import DeltaEdge, Edge
from repro.mrbgraph.sharding import ShardedMRBGStore
from repro.resilience import ResilientExecutor, RetryPolicy

BACKEND_NAMES = ("serial", "thread", "process")
FAULT_KINDS = ("transient", "worker-kill", "slowdown")


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Pin chaos mode off so exact-stat assertions hold under the CI
    chaos job (chaos behaviour itself is tested in TestChaosMode)."""
    monkeypatch.setattr(config, "CHAOS_SEED", None)


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError("task 3 always fails")
    return x


class TokenMapper(Mapper):
    """Emit ``(word, 1)`` per whitespace token."""

    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


def _hook_for(*faults: TaskFault):
    """A fresh :meth:`FaultContext.task_hook` over the given faults."""
    injector = FaultInjector()
    for fault in faults:
        injector.add_task_fault(fault)
    return FaultContext(injector).task_hook()


def _policy(**overrides) -> RetryPolicy:
    defaults = dict(max_retries=2, timeout_s=None, speculation=False)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# ---------------------------------------------------------------------- #
# executor unit behaviour                                                #
# ---------------------------------------------------------------------- #


class TestResilientExecutor:
    def test_passthrough_when_nothing_to_enforce(self):
        wrapper = ResilientExecutor(SerialBackend(), policy=RetryPolicy.disabled())
        try:
            assert wrapper.run_tasks(_square, range(10)) == [x * x for x in range(10)]
            assert wrapper.stats.retries == 0
            assert wrapper.stats.sim_backoff_s == 0.0
        finally:
            wrapper.close()

    def test_transient_fault_is_retried(self):
        ctx_hook = _hook_for(TaskFault("transient", task_index=3, occurrence=0))
        wrapper = ResilientExecutor(
            SerialBackend(), policy=_policy(), fault_hook=ctx_hook
        )
        try:
            assert wrapper.run_tasks(_square, range(8)) == [x * x for x in range(8)]
            assert wrapper.stats.task_failures == 1
            assert wrapper.stats.retries == 1
            assert wrapper.stats.sim_backoff_s > 0.0
            assert wrapper.last_batch_failures == [(3, 1)]
        finally:
            wrapper.close()

    def test_retries_exhausted_raises_typed_error(self):
        faults = [
            TaskFault("transient", task_index=1, occurrence=occ) for occ in range(3)
        ]
        wrapper = ResilientExecutor(
            SerialBackend(), policy=_policy(max_retries=2), fault_hook=_hook_for(*faults)
        )
        try:
            with pytest.raises(RetriesExhausted) as excinfo:
                wrapper.run_tasks(_square, range(4))
            assert excinfo.value.task_index == 1
            assert excinfo.value.attempts == 3
        finally:
            wrapper.close()

    def test_real_exception_retried_then_exhausted_for_pure_batches(self):
        wrapper = ResilientExecutor(SerialBackend(), policy=_policy(max_retries=1))
        try:
            with pytest.raises(RetriesExhausted) as excinfo:
                wrapper.run_tasks(_boom, range(5), picklable=True)
            assert "ValueError" in excinfo.value.cause
            assert wrapper.stats.task_failures == 2
        finally:
            wrapper.close()

    def test_real_exception_propagates_for_impure_batches(self):
        wrapper = ResilientExecutor(SerialBackend(), policy=_policy())
        try:
            with pytest.raises(ValueError, match="task 3 always fails"):
                wrapper.run_tasks(_boom, range(5), picklable=False)
        finally:
            wrapper.close()

    def test_backoff_is_deterministic_and_capped(self):
        def charged(seed_faults):
            wrapper = ResilientExecutor(
                SerialBackend(),
                policy=_policy(max_retries=4),
                fault_hook=_hook_for(*seed_faults),
            )
            try:
                wrapper.run_tasks(_square, range(6))
            finally:
                wrapper.close()
            return wrapper.stats.sim_backoff_s

        faults = [
            TaskFault("transient", task_index=2, occurrence=occ) for occ in range(4)
        ]
        first = charged(faults)
        second = charged(faults)
        assert first == second
        assert 0.0 < first <= 4 * CostModel().retry_backoff_cap_s

    @pytest.mark.parametrize(
        "backend_cls,expected_next",
        [(ProcessBackend, "thread"), (ThreadBackend, "serial")],
    )
    def test_worker_kill_degrades_one_rung(self, backend_cls, expected_next):
        inner = backend_cls(max_workers=2)
        wrapper = ResilientExecutor(
            inner,
            policy=_policy(),
            fault_hook=_hook_for(TaskFault("worker-kill", task_index=1, occurrence=0)),
        )
        try:
            values = wrapper.run_tasks(_square, range(8), picklable=True)
            assert values == [x * x for x in range(8)]
            assert wrapper.stats.degraded_batches == 1
            assert wrapper.current_backend().name == expected_next
            # Later batches keep using the degraded rung and stay correct.
            assert wrapper.run_tasks(_square, range(4)) == [0, 1, 4, 9]
        finally:
            wrapper.close()
            inner.close()

    def test_worker_kill_on_serial_is_a_whole_round_failure(self):
        wrapper = ResilientExecutor(
            SerialBackend(),
            policy=_policy(),
            fault_hook=_hook_for(TaskFault("worker-kill", task_index=0, occurrence=0)),
        )
        try:
            assert wrapper.run_tasks(_square, range(4), picklable=True) == [0, 1, 4, 9]
            # Serial has no rung below it: the round redispatches on the
            # same backend and every task is charged one failed attempt.
            assert wrapper.stats.degraded_batches == 0
            assert wrapper.last_batch_failures == [(i, 1) for i in range(4)]
        finally:
            wrapper.close()

    def test_repeated_kills_cascade_down_the_full_ladder(self):
        faults = [
            TaskFault("worker-kill", task_index=0, occurrence=occ) for occ in range(2)
        ]
        inner = ProcessBackend(max_workers=2)
        wrapper = ResilientExecutor(
            inner, policy=_policy(), fault_hook=_hook_for(*faults)
        )
        try:
            assert wrapper.run_tasks(_square, range(6), picklable=True) == [
                x * x for x in range(6)
            ]
            assert wrapper.stats.degraded_batches == 2
            assert wrapper.current_backend().name == "serial"
        finally:
            wrapper.close()
            inner.close()

    def test_worker_kill_downgraded_to_transient_for_impure_batches(self):
        wrapper = ResilientExecutor(
            SerialBackend(),
            policy=_policy(),
            fault_hook=_hook_for(TaskFault("worker-kill", task_index=1, occurrence=0)),
        )
        try:
            assert wrapper.run_tasks(_square, range(4), picklable=False) == [0, 1, 4, 9]
            # Only the faulted task retried — a whole-round redispatch
            # would have re-applied the impure batch's completed tasks.
            assert wrapper.last_batch_failures == [(1, 1)]
            assert wrapper.stats.degraded_batches == 0
        finally:
            wrapper.close()

    def test_straggler_detection_and_speculation(self):
        wrapper = ResilientExecutor(
            SerialBackend(),
            policy=_policy(timeout_s=0.005, speculation=True),
            fault_hook=_hook_for(
                TaskFault("slowdown", task_index=2, occurrence=0, slow_s=0.02)
            ),
        )
        try:
            values = wrapper.run_tasks(_square, range(5), picklable=True)
            assert values == [x * x for x in range(5)]
            assert 2 in wrapper.last_stragglers
            # The duplicate ran without the injected sleep, so it won.
            assert wrapper.stats.speculative_wins == 1
        finally:
            wrapper.close()

    def test_straggler_without_speculation_only_records(self):
        wrapper = ResilientExecutor(
            SerialBackend(),
            policy=_policy(timeout_s=0.005, speculation=False),
            fault_hook=_hook_for(
                TaskFault("slowdown", task_index=1, occurrence=0, slow_s=0.02)
            ),
        )
        try:
            assert wrapper.run_tasks(_square, range(3)) == [0, 1, 4]
            assert wrapper.last_stragglers == [1]
            assert wrapper.stats.speculative_wins == 0
        finally:
            wrapper.close()

    def test_repeat_failures_blacklist_the_sim_worker(self):
        faults = [
            TaskFault("transient", task_index=0, occurrence=occ) for occ in range(2)
        ]
        wrapper = ResilientExecutor(
            SerialBackend(),
            policy=_policy(max_retries=4, blacklist_after=2, num_sim_workers=4),
            fault_hook=_hook_for(*faults),
        )
        try:
            assert wrapper.run_tasks(_square, range(4)) == [0, 1, 4, 9]
            assert wrapper.stats.workers_blacklisted == 1
            # Task index 0 now routes to a surviving worker.
            assert wrapper._sim_worker(0) != 0
        finally:
            wrapper.close()

    def test_values_identical_across_backends_under_same_faults(self):
        faults = (
            TaskFault("transient", task_index=0, occurrence=0),
            TaskFault("transient", task_index=5, occurrence=0),
            TaskFault("transient", task_index=5, occurrence=1),
        )
        reference = None
        backoffs = set()
        for name in BACKEND_NAMES:
            selector = ExecutorSelector(name)
            selector.task_fault_hook = _hook_for(*faults)
            wrapper = selector.get(resilience=_policy())
            values = wrapper.run_tasks(_square, range(12), picklable=True)
            if reference is None:
                reference = values
            assert values == reference, name
            backoffs.add(wrapper.stats.sim_backoff_s)
            selector.close()
        # Simulated backoff is part of the determinism contract too.
        assert len(backoffs) == 1


# ---------------------------------------------------------------------- #
# selector wiring                                                        #
# ---------------------------------------------------------------------- #


class TestSelectorWiring:
    def test_selector_wraps_and_caches_by_policy(self):
        selector = ExecutorSelector("serial")
        policy = _policy()
        a = selector.get(resilience=policy)
        b = selector.get(resilience=policy)
        assert a is b
        assert isinstance(a, ResilientExecutor)
        assert a.inner is selector.get()
        assert selector.get(resilience=None) is a.inner
        other = selector.get(resilience=_policy(max_retries=7))
        assert other is not a
        selector.close()

    def test_selector_refreshes_fault_hook(self):
        selector = ExecutorSelector("serial")
        wrapper = selector.get(resilience=_policy())
        assert wrapper.fault_hook is None
        hook = _hook_for(TaskFault("transient", task_index=0, occurrence=0))
        selector.task_fault_hook = hook
        assert selector.get(resilience=_policy()).fault_hook is hook
        selector.close()

    def test_provided_backend_instances_are_not_wrapped(self):
        selector = ExecutorSelector("serial")
        provided = SerialBackend()
        assert selector.get(provided, resilience=_policy()) is provided
        selector.close()


# ---------------------------------------------------------------------- #
# retry rescheduling (shard locality)                                    #
# ---------------------------------------------------------------------- #


class TestRescheduleFailedTasks:
    def test_retry_prefers_the_shard_owner(self):
        placement = ShardPlacement(num_shards=4, num_workers=2)
        spec = ShardTaskSpec("merge-0001", cost_s=2.0, shard_id=1, read_bytes=4096)
        result = reschedule_failed_tasks([(spec, 1)], placement)
        assert result.assignment == {"merge-0001": 1}
        assert result.locality_hits == 1
        # Backoff for attempt ordinal 0 extends the worker's busy time.
        assert result.elapsed_s > spec.cost_s

    def test_blacklisted_owner_pays_cross_shard_transfer(self):
        placement = ShardPlacement(num_shards=4, num_workers=2)
        spec = ShardTaskSpec("merge-0001", cost_s=2.0, shard_id=1, read_bytes=4096)
        result = reschedule_failed_tasks([(spec, 1)], placement, blacklisted=[1])
        assert result.assignment == {"merge-0001": 0}
        assert result.locality_misses == 1

    def test_backoff_grows_with_attempts(self):
        placement = ShardPlacement(num_shards=2, num_workers=2)
        spec = ShardTaskSpec("merge-0000", cost_s=1.0, shard_id=0)
        first = reschedule_failed_tasks([(spec, 1)], placement).elapsed_s
        third = reschedule_failed_tasks([(spec, 3)], placement).elapsed_s
        assert third > first

    def test_every_worker_blacklisted_is_an_error(self):
        placement = ShardPlacement(num_shards=2, num_workers=2)
        spec = ShardTaskSpec("merge-0000", cost_s=1.0, shard_id=0)
        with pytest.raises(ValueError, match="blacklisted"):
            reschedule_failed_tasks([(spec, 1)], placement, blacklisted=[0, 1])

    def test_sharded_store_reports_retry_schedule(self, tmp_path):
        wrapper = ResilientExecutor(SerialBackend(), policy=_policy())
        store = ShardedMRBGStore(
            str(tmp_path / "store"), num_shards=4, executor=wrapper
        )
        try:
            store.build(
                (k2, [Edge(0, float(k2))]) for k2 in range(32)
            )
            delta = [
                (k2, [DeltaEdge(1, 1.0, Op.INSERT)]) for k2 in range(0, 32, 2)
            ]
            # Fault-free merge: no retry schedule.
            list(store.merge_delta(delta))
            assert store.last_retry_schedule is None
            # Faulted merge: the failed merge task gets a retry placement.
            wrapper.fault_hook = _hook_for(
                TaskFault("transient", task_index=0, occurrence=0)
            )
            list(store.merge_delta(delta))
            assert store.last_retry_schedule is not None
            assert len(store.last_retry_schedule.assignment) == 1
            assert store.last_retry_schedule.elapsed_s > 0.0
            # The fault-free schedule of the same merge is untouched.
            assert len(store.last_schedule.assignment) > 1
        finally:
            store.close()
            wrapper.close()


# ---------------------------------------------------------------------- #
# engine-level fault matrix: outputs never change                        #
# ---------------------------------------------------------------------- #


def _wordcount_run(executor, faults=()):
    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=1024)
    docs = [(i, f"w{i % 11} w{(i * 3) % 7} common") for i in range(120)]
    dfs.write("/docs", docs)
    engine = MapReduceEngine(cluster, dfs, executor=executor)
    if faults:
        engine.executors.task_fault_hook = _hook_for(*faults)
    conf = JobConf("wc", TokenMapper, SumReducer, inputs=["/docs"],
                   output="/counts", num_reducers=4, task_retries=3)
    result = engine.run(conf)
    output = list(dfs.read("/counts"))
    engine.close()
    return {
        "output": output,
        "times": result.metrics.times.as_dict(),
        "counters": result.metrics.counters.as_dict(),
    }


def _i2mr_run(executor, faults=()):
    from repro.algorithms.pagerank import PageRank
    from repro.datasets.graphs import mutate_web_graph, powerlaw_web_graph
    from repro.inciter.engine import I2MREngine, I2MROptions
    from repro.iterative.api import IterativeJob

    cluster = Cluster(num_workers=4, seed=7)
    dfs = DistributedFS(cluster, block_size=2048)
    graph = powerlaw_web_graph(120, 6.0, seed=3)
    delta = mutate_web_graph(graph, 0.1, seed=4)
    engine = I2MREngine(cluster, dfs, executor=executor)
    if faults:
        engine.executors.task_fault_hook = _hook_for(*faults)
    job = IterativeJob(PageRank(), graph, num_partitions=4,
                       max_iterations=5, epsilon=1e-6, task_retries=3)
    _, preserved = engine.run_initial(job)
    incr = engine.run_incremental(
        job, delta.records, preserved,
        I2MROptions(max_iterations=4, epsilon=1e-6),
    )
    summary = {
        "state": incr.state,
        "times": incr.metrics.times.as_dict(),
        "counters": incr.metrics.counters.as_dict(),
    }
    preserved.cleanup()
    engine.close()
    return summary


def _schedule(kind):
    """One engine-level fault schedule per fault kind."""
    if kind == "slowdown":
        return (
            TaskFault("slowdown", task_index=0, occurrence=0, slow_s=0.01),
            TaskFault("slowdown", task_index=2, occurrence=1, slow_s=0.01),
        )
    return (
        TaskFault(kind, task_index=0, occurrence=0),
        TaskFault("transient", task_index=2, occurrence=1),
    )


class TestEngineFaultMatrix:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_mapreduce_outputs_survive_faults(self, backend, kind):
        reference = _wordcount_run("serial")
        assert _wordcount_run(backend, _schedule(kind)) == reference

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_i2mr_outputs_survive_faults(self, backend, kind):
        reference = _i2mr_run("serial")
        assert _i2mr_run(backend, _schedule(kind)) == reference

    def test_process_pool_death_completes_via_degradation(self):
        faults = (TaskFault("worker-kill", task_index=0, occurrence=0),)
        reference = _wordcount_run("serial")
        cluster = Cluster(num_workers=4, seed=7)
        dfs = DistributedFS(cluster, block_size=1024)
        docs = [(i, f"w{i % 11} w{(i * 3) % 7} common") for i in range(120)]
        dfs.write("/docs", docs)
        engine = MapReduceEngine(cluster, dfs, executor="process")
        engine.executors.task_fault_hook = _hook_for(*faults)
        conf = JobConf("wc", TokenMapper, SumReducer, inputs=["/docs"],
                       output="/counts", num_reducers=4, task_retries=3)
        result = engine.run(conf)
        wrapper = engine.backend_for(conf)
        assert wrapper.stats.degraded_batches >= 1
        assert wrapper.current_backend().name != "process"
        summary = {
            "output": list(dfs.read("/counts")),
            "times": result.metrics.times.as_dict(),
            "counters": result.metrics.counters.as_dict(),
        }
        engine.close()
        assert summary == reference


# ---------------------------------------------------------------------- #
# property: random fault schedules never change the digest               #
# ---------------------------------------------------------------------- #


_fault_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=1),
        st.sampled_from(["transient", "slowdown", "worker-kill"]),
    ),
    max_size=5,
    unique_by=lambda entry: (entry[0], entry[1]),
)


class TestRandomFaultSchedules:
    @settings(max_examples=8, deadline=None)
    @given(entries=_fault_entries)
    def test_wordcount_digest_invariant(self, entries):
        faults = []
        for index, occurrence, kind in entries:
            if kind == "worker-kill" and occurrence != 0:
                # Bound whole-round charges so the (deliberately small)
                # retry budget cannot be exhausted by the schedule shape.
                kind = "transient"
            faults.append(
                TaskFault(kind, task_index=index, occurrence=occurrence, slow_s=0.005)
            )
        assert _wordcount_run("serial", tuple(faults)) == _wordcount_run("serial")


# ---------------------------------------------------------------------- #
# chaos mode                                                             #
# ---------------------------------------------------------------------- #


class TestChaosMode:
    def test_chaos_injects_deterministically_and_preserves_values(self, monkeypatch):
        monkeypatch.setattr(config, "CHAOS_SEED", 1234)
        monkeypatch.setattr(config, "CHAOS_RATE", 0.5)

        def run():
            wrapper = ResilientExecutor(SerialBackend(), policy=_policy(max_retries=4))
            try:
                values = wrapper.run_tasks(_square, range(40), picklable=True)
            finally:
                wrapper.close()
            return values, wrapper.stats.task_failures, wrapper.stats.sim_backoff_s

        values, failures, backoff = run()
        assert values == [x * x for x in range(40)]
        # At a 50% rate over 40 tasks some attempts must have failed,
        # and the same seed must fail exactly the same attempts.
        assert failures > 0
        assert run() == (values, failures, backoff)

    def test_chaos_respects_zero_rate(self, monkeypatch):
        monkeypatch.setattr(config, "CHAOS_SEED", 1234)
        monkeypatch.setattr(config, "CHAOS_RATE", 0.0)
        wrapper = ResilientExecutor(SerialBackend(), policy=_policy())
        try:
            assert wrapper.run_tasks(_square, range(20)) == [
                x * x for x in range(20)
            ]
            assert wrapper.stats.task_failures == 0
        finally:
            wrapper.close()

    def test_chaos_outputs_identical_across_backends(self, monkeypatch):
        monkeypatch.setattr(config, "CHAOS_SEED", 99)
        monkeypatch.setattr(config, "CHAOS_RATE", 0.25)
        reference = _wordcount_run("serial")
        for backend in ("thread", "process"):
            assert _wordcount_run(backend) == reference, backend


# ---------------------------------------------------------------------- #
# spec plumbing                                                          #
# ---------------------------------------------------------------------- #


class TestTaskFaultSpecs:
    def test_fault_spec_task_stage_roundtrip(self):
        spec = FaultSpec(iteration=1, stage="task", task_index=3,
                         task_kind="slowdown", slow_s=0.2)
        fault = spec.as_task_fault()
        assert fault == TaskFault("slowdown", task_index=3, occurrence=1, slow_s=0.2)
        directive = fault.directive()
        assert directive == TaskFaultDirective(kind="slowdown", slow_s=0.2,
                                               occurrence=1)

    def test_injector_routes_task_stage(self):
        injector = FaultInjector([
            FaultSpec(iteration=0, stage="task", task_index=2,
                      task_kind="transient"),
        ])
        assert injector.task_fault_for(2, 0).kind == "transient"
        assert injector.task_fault_for(2, 1) is None
        assert injector.num_faults() == 1

    def test_jobconf_validates_resilience_knobs(self):
        from repro.common.errors import InvalidJobConf

        conf = JobConf("j", TokenMapper, SumReducer, inputs=["/x"], output="/y",
                       task_retries=-1)
        with pytest.raises(InvalidJobConf):
            conf.validate()
        conf = JobConf("j", TokenMapper, SumReducer, inputs=["/x"], output="/y",
                       task_timeout_s=0.0)
        with pytest.raises(InvalidJobConf):
            conf.validate()

    def test_retry_policy_for_job_reads_knobs(self):
        conf = JobConf("j", TokenMapper, SumReducer, inputs=["/x"], output="/y",
                       task_retries=5, task_timeout_s=1.5, speculation=True)
        policy = RetryPolicy.for_job(conf)
        assert policy.max_retries == 5
        assert policy.timeout_s == 1.5
        assert policy.speculation is True
        assert policy.active

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        assert not RetryPolicy.disabled().active
