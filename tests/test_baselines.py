"""Tests for the comparison systems: PlainMR, HaLoop, Spark-like, Incoop."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.baselines.haloop import HaLoopDriver
from repro.baselines.incoop import IncoopEngine, content_defined_chunks
from repro.baselines.plainmr import PlainMRDriver
from repro.baselines.spark import SparkLikeDriver
from repro.datasets.graphs import powerlaw_web_graph, weighted_graph_from
from repro.datasets.matrices import block_matrix
from repro.datasets.points import gaussian_points
from repro.incremental.api import SumReducer
from repro.mapreduce.api import Mapper
from repro.mapreduce.job import JobConf

from tests.conftest import fresh_cluster


def pagerank_world(n=250, seed=6, iterations=5):
    graph = powerlaw_web_graph(n, 5, seed=seed)
    algorithm = PageRank()
    reference = algorithm.reference(graph, iterations)
    return graph, algorithm, reference, iterations


class TestEngineAgreement:
    """All execution systems must compute identical results."""

    def test_pagerank_agreement(self):
        graph, algorithm, reference, iters = pagerank_world()
        for driver_cls in (PlainMRDriver, HaLoopDriver, SparkLikeDriver):
            cluster, dfs = fresh_cluster()
            result = driver_cls(cluster, dfs).run(
                algorithm, graph, max_iterations=iters
            )
            worst = max(abs(result.state[k] - reference[k]) for k in reference)
            assert worst < 1e-9, driver_cls.__name__

    def test_sssp_agreement(self):
        base = powerlaw_web_graph(200, 5, seed=13)
        graph = weighted_graph_from(base, seed=1)
        algorithm = SSSP(source=0)
        reference = algorithm.reference(graph, 6)
        for driver_cls in (PlainMRDriver, HaLoopDriver, SparkLikeDriver):
            cluster, dfs = fresh_cluster()
            result = driver_cls(cluster, dfs).run(
                algorithm, graph, max_iterations=6
            )
            for k, expected in reference.items():
                got = result.state[k]
                assert got == expected or abs(got - expected) < 1e-9

    def test_kmeans_agreement(self):
        points = gaussian_points(200, dim=3, k=3, seed=5)
        algorithm = Kmeans(k=3, dim=3)
        reference = algorithm.reference(points, 4)
        for driver_cls in (PlainMRDriver, HaLoopDriver, SparkLikeDriver):
            cluster, dfs = fresh_cluster()
            result = driver_cls(cluster, dfs).run(
                algorithm, points, max_iterations=4
            )
            assert algorithm.difference(result.state[1], reference[1]) < 1e-9

    def test_gimv_agreement(self):
        matrix = block_matrix(num_blocks=5, block_size=10, density=0.08, seed=4)
        algorithm = GIMV(block_size=10)
        reference = algorithm.reference(matrix, 4)
        for driver_cls in (PlainMRDriver, HaLoopDriver, SparkLikeDriver):
            cluster, dfs = fresh_cluster()
            result = driver_cls(cluster, dfs).run(
                algorithm, matrix, max_iterations=4
            )
            worst = max(
                max(abs(a - b) for a, b in zip(result.state[j], reference[j]))
                for j in reference
            )
            assert worst < 1e-9, driver_cls.__name__


class TestCostShapes:
    def test_haloop_pays_startup_once(self):
        graph, algorithm, _, iters = pagerank_world(n=150)
        cluster, dfs = fresh_cluster()
        plain = PlainMRDriver(cluster, dfs).run(algorithm, graph, max_iterations=iters)
        cluster, dfs = fresh_cluster()
        haloop = HaLoopDriver(cluster, dfs).run(algorithm, graph, max_iterations=iters)
        # PlainMR pays startup per job per iteration; HaLoop once per loop job.
        assert plain.metrics.times.startup == pytest.approx(
            iters * cluster.cost_model.job_startup_s
        )
        assert haloop.metrics.times.startup == pytest.approx(
            2 * cluster.cost_model.job_startup_s
        )

    def test_haloop_cache_kills_structure_shuffle(self):
        graph, algorithm, _, _ = pagerank_world(n=200)
        cluster, dfs = fresh_cluster()
        driver = HaLoopDriver(cluster, dfs)
        result = driver.run(algorithm, graph, max_iterations=4)
        # Reducer-cache hits are recorded from iteration 2 on.
        assert result.metrics.counters.get("reducer_cache_bytes") > 0

    def test_spark_faster_when_in_memory(self):
        graph, algorithm, _, iters = pagerank_world(n=200)
        cluster, dfs = fresh_cluster()
        plain = PlainMRDriver(cluster, dfs).run(algorithm, graph, max_iterations=iters)
        cluster, dfs = fresh_cluster()
        spark_driver = SparkLikeDriver(cluster, dfs)
        spark = spark_driver.run(algorithm, graph, max_iterations=iters)
        assert spark_driver.last_stats.spill_fraction == 0.0
        assert spark.total_time < plain.total_time

    def test_spark_degrades_under_memory_pressure(self):
        graph, algorithm, _, iters = pagerank_world(n=300)
        roomy, dfs1 = fresh_cluster()
        fast = SparkLikeDriver(roomy, dfs1).run(algorithm, graph, max_iterations=iters)

        tight, dfs2 = fresh_cluster(worker_memory=2 * 1024)
        driver = SparkLikeDriver(tight, dfs2)
        slow = driver.run(algorithm, graph, max_iterations=iters)
        assert driver.last_stats.spill_fraction > 0
        assert slow.total_time > fast.total_time

    def test_epsilon_supported_by_drivers(self):
        graph, algorithm, _, _ = pagerank_world(n=100)
        cluster, dfs = fresh_cluster()
        result = PlainMRDriver(cluster, dfs).run(
            algorithm, graph, max_iterations=100, epsilon=1e-6
        )
        assert result.converged
        assert result.iterations < 100


class TokenMapper(Mapper):
    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


class TestIncoop:
    def _conf(self):
        return JobConf(name="wc", mapper=TokenMapper, reducer=SumReducer,
                       inputs=["/in"], output="/out", num_reducers=3)

    def test_initial_run_correct(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/in", [(i, "a b a") for i in range(50)])
        engine = IncoopEngine(cluster, dfs, chunk_records=8)
        result, memo = engine.run_memoized(self._conf())
        assert dict(dfs.read_all("/out")) == {"a": 100, "b": 50}

    def test_unchanged_input_reuses_everything(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/in", [(i, "a b") for i in range(64)])
        engine = IncoopEngine(cluster, dfs, chunk_records=8)
        _, memo = engine.run_memoized(self._conf())
        result, _ = engine.run_memoized(self._conf(), memo)
        counters = result.metrics.counters
        assert counters.get("map_tasks_executed") == 0
        assert counters.get("map_tasks_reused") > 0
        assert counters.get("reduce_tasks_reused") == 3

    def test_append_only_delta_reuses_most(self):
        cluster, dfs = fresh_cluster()
        records = [(i, "a b") for i in range(128)]
        dfs.write("/in", records)
        engine = IncoopEngine(cluster, dfs, chunk_records=8)
        _, memo = engine.run_memoized(self._conf())
        dfs.write("/in", records + [(200, "c d")], overwrite=True)
        result, _ = engine.run_memoized(self._conf(), memo)
        counters = result.metrics.counters
        assert counters.get("map_tasks_reused") > counters.get("map_tasks_executed")
        assert dict(dfs.read_all("/out"))["c"] == 1

    def test_scattered_updates_defeat_reuse(self):
        cluster, dfs = fresh_cluster()
        records = [(i, "a b") for i in range(128)]
        dfs.write("/in", records)
        engine = IncoopEngine(cluster, dfs, chunk_records=8)
        _, memo = engine.run_memoized(self._conf())
        # Touch every 8th record: nearly every chunk fingerprint changes.
        updated = [(i, "a b x" if i % 8 == 0 else "a b") for i in range(128)]
        dfs.write("/in", updated, overwrite=True)
        result, _ = engine.run_memoized(self._conf(), memo)
        counters = result.metrics.counters
        assert counters.get("map_tasks_executed") > counters.get("map_tasks_reused")

    def test_results_always_match_scratch(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/in", [(i, f"w{i % 7} w{i % 3}") for i in range(100)])
        engine = IncoopEngine(cluster, dfs, chunk_records=16)
        _, memo = engine.run_memoized(self._conf())
        updated = [(i, f"w{i % 5} w{i % 3}") for i in range(100)]
        dfs.write("/in", updated, overwrite=True)
        engine.run_memoized(self._conf(), memo)
        incoop_out = dict(dfs.read_all("/out"))

        from repro.mapreduce.engine import MapReduceEngine

        cluster2, dfs2 = fresh_cluster()
        dfs2.write("/in", updated)
        MapReduceEngine(cluster2, dfs2).run(self._conf())
        assert incoop_out == dict(dfs2.read_all("/out"))


class TestContentChunking:
    def test_covers_all_records(self):
        records = [(i, f"text-{i}") for i in range(100)]
        chunks = content_defined_chunks(records, target_records=10)
        flat = [r for chunk in chunks for r in chunk]
        assert flat == records

    def test_stable_under_append(self):
        records = [(i, f"text-{i}") for i in range(100)]
        before = content_defined_chunks(records, target_records=10)
        after = content_defined_chunks(records + [(999, "new")], target_records=10)
        # All but the final chunk are byte-identical.
        assert before[:-1] == after[: len(before) - 1]

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            content_defined_chunks([], target_records=0)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=200))
    @settings(max_examples=50)
    def test_chunking_partitions_input(self, keys):
        records = [(k, k) for k in keys]
        chunks = content_defined_chunks(records, target_records=16)
        assert [r for c in chunks for r in c] == records
        assert all(len(c) <= 64 for c in chunks)  # hard cap 4x target
