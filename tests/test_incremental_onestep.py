"""Tests for fine-grain incremental one-step processing (§3).

The central invariant: an incremental run's refreshed output is logically
identical to recomputing from scratch on the updated input (§3.1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import InvalidJobConf, JobError
from repro.common.kvpair import delete, insert
from repro.incremental.api import (
    AvgPartialReducer,
    MaxReducer,
    MinReducer,
    SumReducer,
    delta_to_dfs_records,
    dfs_records_to_delta,
)
from repro.incremental.engine import IncrMREngine
from repro.mapreduce.api import Mapper
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf

from tests.conftest import fresh_cluster


class InEdgeMapper(Mapper):
    """The paper's Fig 3 application: in-edge weight sums."""

    def map(self, i, value, ctx):
        for j, w in value:
            ctx.emit(j, w)


class TokenMapper(Mapper):
    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


def run_scratch(records, mapper, reducer, num_reducers=2):
    cluster, dfs = fresh_cluster()
    dfs.write("/in", sorted(records.items()))
    MapReduceEngine(cluster, dfs).run(
        JobConf(name="scratch", mapper=mapper, reducer=reducer,
                inputs=["/in"], output="/out", num_reducers=num_reducers)
    )
    return dict(dfs.read_all("/out"))


class TestPaperFig3:
    """The worked example of Fig 3, end to end."""

    def setup_method(self):
        self.graph = {
            0: ((1, 0.3), (2, 0.3)),
            1: ((2, 0.4),),
            2: ((0, 0.5), (1, 0.5)),
        }
        self.delta = [
            delete(1, ((2, 0.4),)),
            insert(3, ((0, 0.1),)),
            delete(0, ((1, 0.3), (2, 0.3))),
            insert(0, ((2, 0.6),)),
        ]
        self.new_graph = {
            0: ((2, 0.6),),
            2: ((0, 0.5), (1, 0.5)),
            3: ((0, 0.1),),
        }

    def test_initial_results(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/g", sorted(self.graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)
        assert dict(dfs.read_all("/out")) == pytest.approx(
            {0: 0.5, 1: 0.8, 2: 0.7}
        )
        state.cleanup()

    def test_incremental_matches_fig3(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/g", sorted(self.graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)
        dfs.write("/d", delta_to_dfs_records(self.delta))
        engine.run_incremental(conf, "/d", state)
        assert dict(dfs.read_all("/out")) == pytest.approx(
            {0: 0.6, 1: 0.5, 2: 0.6}
        )
        state.cleanup()

    def test_equals_scratch_recompute(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/g", sorted(self.graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)
        dfs.write("/d", delta_to_dfs_records(self.delta))
        engine.run_incremental(conf, "/d", state)
        incremental = dict(dfs.read_all("/out"))
        scratch = run_scratch(self.new_graph, InEdgeMapper, SumReducer)
        assert incremental == pytest.approx(scratch)
        state.cleanup()


class TestRandomizedEquivalence:
    """Scratch-equivalence under seeded random graphs and deltas."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graph_delta(self, seed):
        rng = np.random.RandomState(seed)
        n = 40
        graph = {
            i: tuple(
                (int(j), float(round(rng.uniform(0.1, 1.0), 3)))
                for j in rng.choice(n, size=rng.randint(1, 5), replace=False)
            )
            for i in range(n)
        }
        cluster, dfs = fresh_cluster(seed=seed)
        dfs.write("/g", sorted(graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=3)
        _, state = engine.run_initial(conf)

        new_graph = dict(graph)
        delta = []
        for i in list(rng.choice(n, size=8, replace=False)):
            i = int(i)
            delta.append(delete(i, graph[i]))
            if rng.rand() < 0.7:  # rewire; otherwise plain deletion
                new_links = tuple(
                    (int(j), float(round(rng.uniform(0.1, 1.0), 3)))
                    for j in rng.choice(n, size=rng.randint(1, 4), replace=False)
                )
                delta.append(insert(i, new_links))
                new_graph[i] = new_links
            else:
                del new_graph[i]

        dfs.write("/d", delta_to_dfs_records(delta))
        engine.run_incremental(conf, "/d", state)
        incremental = dict(dfs.read_all("/out"))
        scratch = run_scratch(new_graph, InEdgeMapper, SumReducer, num_reducers=3)
        assert incremental == pytest.approx(scratch)
        state.cleanup()


class TestAccumulatorPath:
    def test_wordcount_accumulator(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/docs", [(0, "a b a"), (1, "b c")])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="wc", mapper=TokenMapper, reducer=SumReducer,
                       inputs=["/docs"], output="/wc", num_reducers=2)
        _, state = engine.run_initial(conf, accumulator=True)
        dfs.write("/d", delta_to_dfs_records([insert(2, "a c c")]))
        engine.run_incremental(conf, "/d", state)
        assert dict(dfs.read_all("/wc")) == {"a": 3, "b": 2, "c": 3}
        state.cleanup()

    def test_accumulator_requires_insert_only(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/docs", [(0, "a")])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="wc", mapper=TokenMapper, reducer=SumReducer,
                       inputs=["/docs"], output="/wc", num_reducers=2)
        _, state = engine.run_initial(conf, accumulator=True)
        dfs.write("/d", delta_to_dfs_records([delete(0, "a")]))
        with pytest.raises(JobError):
            engine.run_incremental(conf, "/d", state)
        state.cleanup()

    def test_accumulator_requires_accumulator_reducer(self):
        from repro.mapreduce.api import Reducer

        class PlainReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.emit(key, len(values))

        cluster, dfs = fresh_cluster()
        dfs.write("/docs", [(0, "a")])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="wc", mapper=TokenMapper, reducer=PlainReducer,
                       inputs=["/docs"], output="/wc", num_reducers=2)
        with pytest.raises(InvalidJobConf):
            engine.run_initial(conf, accumulator=True)

    def test_max_accumulator(self):
        class ValueMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key % 2, value)

        cluster, dfs = fresh_cluster()
        dfs.write("/vals", [(i, i * 10) for i in range(6)])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="max", mapper=ValueMapper, reducer=MaxReducer,
                       inputs=["/vals"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf, accumulator=True)
        dfs.write("/d", delta_to_dfs_records([insert(7, 999)]))
        engine.run_incremental(conf, "/d", state)
        out = dict(dfs.read_all("/out"))
        assert out[1] == 999
        assert out[0] == 40
        state.cleanup()


class TestAccumulatorHelpers:
    def test_min_reducer(self):
        from repro.mapreduce.api import Context

        ctx = Context()
        MinReducer().reduce("k", [5, 2, 9], ctx)
        assert ctx.take() == [("k", 2)]

    def test_avg_partial_reducer(self):
        from repro.mapreduce.api import Context

        ctx = Context()
        AvgPartialReducer().reduce("k", [(10.0, 2), (20.0, 3)], ctx)
        [(key, partial)] = ctx.take()
        assert AvgPartialReducer.finalize_average(partial) == pytest.approx(6.0)

    def test_avg_empty_raises(self):
        with pytest.raises(ValueError):
            AvgPartialReducer.finalize_average((0.0, 0))

    def test_delta_record_roundtrip(self):
        delta = [insert(1, "a"), delete(2, "b")]
        assert dfs_records_to_delta(delta_to_dfs_records(delta)) == delta


class TestStateManagement:
    def test_num_reducers_mismatch_rejected(self):
        cluster, dfs = fresh_cluster()
        dfs.write("/g", [(0, ((1, 1.0),))])
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)
        bad = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                      inputs=["/g"], output="/out", num_reducers=5)
        dfs.write("/d", delta_to_dfs_records([insert(9, ((0, 1.0),))]))
        with pytest.raises(InvalidJobConf):
            engine.run_incremental(bad, "/d", state)
        state.cleanup()

    def test_incremental_cheaper_than_recompute(self):
        cluster, dfs = fresh_cluster()
        records = [(i, ((i + 1) % 200, 0.5),) for i in range(200)]
        graph = {i: (((i + 1) % 200, 0.5),) for i in range(200)}
        dfs.write("/g", sorted(graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        initial, state = engine.run_initial(conf)
        delta = [delete(0, graph[0]), insert(0, ((5, 0.9),))]
        dfs.write("/d", delta_to_dfs_records(delta))
        incr = engine.run_incremental(conf, "/d", state)
        # Same job startup, but the delta touches 2 records instead of 200.
        assert (
            incr.metrics.times.map + incr.metrics.times.shuffle
            < initial.metrics.times.map + initial.metrics.times.shuffle
        )
        state.cleanup()

    def test_sequential_deltas_accumulate(self):
        cluster, dfs = fresh_cluster()
        graph = {0: ((1, 1.0),), 1: ((0, 2.0),)}
        dfs.write("/g", sorted(graph.items()))
        engine = IncrMREngine(cluster, dfs)
        conf = JobConf(name="inedge", mapper=InEdgeMapper, reducer=SumReducer,
                       inputs=["/g"], output="/out", num_reducers=2)
        _, state = engine.run_initial(conf)

        dfs.write("/d1", delta_to_dfs_records([insert(2, ((0, 5.0),))]))
        engine.run_incremental(conf, "/d1", state)
        dfs.write("/d2", delta_to_dfs_records([insert(3, ((0, 7.0),))]))
        engine.run_incremental(conf, "/d2", state)

        scratch = run_scratch(
            {**graph, 2: ((0, 5.0),), 3: ((0, 7.0),)}, InEdgeMapper, SumReducer
        )
        assert dict(dfs.read_all("/out")) == pytest.approx(scratch)
        state.cleanup()
