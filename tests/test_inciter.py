"""Tests for incremental iterative processing (§5).

The core invariant: an incremental run converges to the same fixpoint as
recomputing from scratch on the updated input.
"""

from __future__ import annotations

import pytest

from repro.algorithms.gimv import GIMV
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.datasets.graphs import (
    mutate_web_graph,
    mutate_weighted_graph,
    powerlaw_web_graph,
    weighted_graph_from,
)
from repro.datasets.matrices import block_matrix, mutate_matrix
from repro.datasets.points import gaussian_points, mutate_points
from repro.inciter.engine import I2MREngine, I2MROptions
from repro.iterative.api import IterativeJob

from tests.conftest import fresh_cluster


def pagerank_setup(n=400, seed=3, fraction=0.1):
    graph = powerlaw_web_graph(n, 5, seed=seed)
    algorithm = PageRank()
    cluster, dfs = fresh_cluster(seed=seed)
    engine = I2MREngine(cluster, dfs)
    job = IterativeJob(algorithm, graph, num_partitions=4,
                       max_iterations=40, epsilon=1e-7)
    initial, preserved = engine.run_initial(job)
    delta = mutate_web_graph(graph, fraction, seed=seed + 1)
    return algorithm, graph, engine, job, initial, preserved, delta


class TestInitialRun:
    def test_initial_converges_and_preserves(self):
        algorithm, graph, engine, job, initial, preserved, _ = pagerank_setup()
        assert initial.converged
        reference = algorithm.reference(graph, 200)
        assert max(
            abs(preserved.state[k] - reference[k]) for k in reference
        ) < 1e-4
        # MRBGraph preserved: chunks exist for vertices with in-edges.
        total_chunks = sum(len(s) for s in preserved.stores.stores.values())
        assert total_chunks > 0
        preserved.cleanup()

    def test_initial_charges_store_build(self):
        _, _, _, _, initial, preserved, _ = pagerank_setup(n=150)
        assert initial.metrics.times.merge > 0
        preserved.cleanup()


class TestIncrementalCorrectness:
    def test_pagerank_matches_scratch_fixpoint(self):
        algorithm, _, engine, job, _, preserved, delta = pagerank_setup()
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=1e-10, max_iterations=80),
        )
        reference = algorithm.reference_from(delta.new_graph, {}, 200)
        assert set(result.state) == set(reference)
        assert max(
            abs(result.state[k] - reference[k]) for k in reference
        ) < 1e-4
        preserved.cleanup()

    def test_sssp_exact_with_zero_threshold(self):
        base = powerlaw_web_graph(300, 5, seed=11)
        graph = weighted_graph_from(base, seed=2)
        algorithm = SSSP(source=0)
        cluster, dfs = fresh_cluster(seed=11)
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(algorithm, graph, num_partitions=4,
                           max_iterations=40, epsilon=0.0)
        _, preserved = engine.run_initial(job)
        delta = mutate_weighted_graph(graph, 0.1, seed=5)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.0, max_iterations=60),
        )
        reference = algorithm.reference(delta.new_graph, 60)
        for k, expected in reference.items():
            got = result.state.get(k)
            assert got == expected or abs(got - expected) < 1e-9
        preserved.cleanup()

    def test_gimv_converges_close(self):
        matrix = block_matrix(num_blocks=10, block_size=12, density=0.05, seed=6)
        algorithm = GIMV(block_size=12)
        cluster, dfs = fresh_cluster(seed=6)
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(algorithm, matrix, num_partitions=4,
                           max_iterations=60, epsilon=1e-10)
        _, preserved = engine.run_initial(job)
        delta = mutate_matrix(matrix, 0.08, seed=7)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=1e-12, max_iterations=80),
        )
        reference = algorithm.reference(delta.new_dataset, 150)
        worst = max(
            max(abs(a - b) for a, b in zip(result.state[j], reference[j]))
            for j in reference
        )
        # Bounded by the geometric convergence tail of the damped iteration.
        assert worst < 1e-3
        preserved.cleanup()

    def test_empty_delta_converges_immediately(self):
        _, _, engine, job, _, preserved, _ = pagerank_setup(n=100)
        result = engine.run_incremental(
            job, [], preserved, I2MROptions(max_iterations=10)
        )
        assert result.converged
        assert result.iterations == 1
        preserved.cleanup()

    def test_vertex_insertion_and_deletion(self):
        algorithm, graph, engine, job, _, preserved, delta = pagerank_setup(
            n=200, fraction=0.2
        )
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=1e-10, max_iterations=60),
        )
        # State keys exactly track the updated graph's vertex set.
        assert set(result.state) == set(delta.new_graph.out_links)
        preserved.cleanup()


class TestCPCBehaviour:
    def test_cpc_reduces_propagation(self):
        algorithm, _, engine, job, _, preserved, delta = pagerank_setup()
        loose = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.5, max_iterations=10),
        )
        preserved.cleanup()

        _, _, engine2, job2, _, preserved2, delta2 = pagerank_setup()
        tight = engine2.run_incremental(
            job2, delta2.records, preserved2,
            I2MROptions(filter_threshold=None, max_iterations=10),
        )
        preserved2.cleanup()

        loose_prop = sum(s.propagated_kv_pairs for s in loose.per_iteration)
        tight_prop = sum(s.propagated_kv_pairs for s in tight.per_iteration)
        assert loose_prop < tight_prop
        assert loose.total_time < tight.total_time

    def test_cpc_result_stays_close_to_exact(self):
        algorithm, _, engine, job, _, preserved, delta = pagerank_setup()
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.05, max_iterations=20),
        )
        reference = algorithm.reference_from(delta.new_graph, {}, 200)
        errors = [
            abs(result.state[k] - reference[k]) / abs(reference[k])
            for k in reference
        ]
        assert sum(errors) / len(errors) < 0.05
        preserved.cleanup()

    def test_state_history_recording(self):
        _, _, engine, job, _, preserved, delta = pagerank_setup(n=100)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.1, max_iterations=5,
                        record_states=True),
        )
        assert len(result.state_history) == result.iterations
        assert result.state_history[-1] == result.state
        preserved.cleanup()


class TestAutoOff:
    def test_kmeans_falls_back(self):
        points = gaussian_points(200, dim=3, k=3, seed=8)
        algorithm = Kmeans(k=3, dim=3)
        cluster, dfs = fresh_cluster(seed=8)
        engine = I2MREngine(cluster, dfs)
        job = IterativeJob(algorithm, points, num_partitions=4,
                           max_iterations=15, epsilon=1e-5)
        _, preserved = engine.run_initial(job)
        delta = mutate_points(points, 0.1, seed=9)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(max_iterations=15, epsilon=1e-5),
        )
        assert result.fell_back
        assert result.mrbg_disabled_at == 1
        assert not preserved.stores_valid
        # The fallback still converges to the right clustering.
        reference = algorithm.reference_from(
            delta.new_dataset, {1: preserved.state[1]}, result.iterations - 1
        )
        preserved.cleanup()

    def test_mrbg_disabled_option(self):
        _, _, engine, job, _, preserved, delta = pagerank_setup(n=100)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(mrbg_enabled=False, max_iterations=5),
        )
        assert result.mrbg_disabled_at == 0
        assert all(not s.mrbg_maintained for s in result.per_iteration)
        preserved.cleanup()

    def test_pdelta_threshold_configurable(self):
        _, _, engine, job, _, preserved, delta = pagerank_setup(fraction=0.3)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=None, pdelta_threshold=0.01,
                        max_iterations=6),
        )
        assert result.fell_back
        preserved.cleanup()


class TestStoreLifecycle:
    def test_batches_accumulate_per_iteration(self):
        _, _, engine, job, _, preserved, delta = pagerank_setup()
        engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.01, max_iterations=6),
        )
        batches = [s.num_batches for s in preserved.stores.stores.values()]
        assert max(batches) >= 3  # initial build + several merge batches
        preserved.cleanup()

    def test_checkpoint_option_charges_time(self):
        _, _, engine, job, _, preserved, delta = pagerank_setup(n=150)
        result = engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=0.01, max_iterations=4,
                        checkpoint=True),
        )
        assert result.metrics.times.checkpoint > 0
        preserved.cleanup()

    def test_consecutive_jobs_reuse_state(self):
        algorithm, graph, engine, job, _, preserved, delta = pagerank_setup()
        engine.run_incremental(
            job, delta.records, preserved,
            I2MROptions(filter_threshold=1e-10, max_iterations=60),
        )
        # A second evolution step continues from the refreshed state.
        delta2 = mutate_web_graph(delta.new_graph, 0.05, seed=99)
        result2 = engine.run_incremental(
            IterativeJob(algorithm, delta2.new_graph, num_partitions=4,
                         max_iterations=60),
            delta2.records,
            preserved,
            I2MROptions(filter_threshold=1e-10, max_iterations=80),
        )
        reference = algorithm.reference_from(delta2.new_graph, {}, 250)
        assert max(
            abs(result2.state[k] - reference[k]) for k in reference
        ) < 1e-3
        preserved.cleanup()
