"""Tests for the vanilla MapReduce engine."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidJobConf
from repro.mapreduce.api import Context, IdentityMapper, IdentityReducer, Mapper, Reducer
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import JobConf


class TokenMapper(Mapper):
    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


class SumRed(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def wordcount_conf(num_reducers=3, combiner=None):
    return JobConf(
        name="wc",
        mapper=TokenMapper,
        reducer=SumRed,
        inputs=["/in"],
        output="/out",
        num_reducers=num_reducers,
        combiner=combiner,
    )


class TestWordCount:
    def test_correct_counts(self, cluster, dfs):
        dfs.write("/in", [(i, "a b c a") for i in range(40)])
        result = MapReduceEngine(cluster, dfs).run(wordcount_conf())
        assert dict(dfs.read("/out")) == {"a": 80, "b": 40, "c": 40}
        assert result.total_time > 0

    def test_output_sorted_within_partitions(self, cluster, dfs):
        dfs.write("/in", [(0, "z y x w v u")])
        MapReduceEngine(cluster, dfs).run(wordcount_conf(num_reducers=1))
        keys = [k for k, _ in dfs.read("/out")]
        assert keys == sorted(keys)

    def test_multiple_inputs(self, cluster, dfs):
        dfs.write("/in", [(0, "a")])
        dfs.write("/in2", [(1, "a b")])
        conf = wordcount_conf()
        conf = JobConf(
            name="wc2", mapper=TokenMapper, reducer=SumRed,
            inputs=["/in", "/in2"], output="/out", num_reducers=2,
        )
        MapReduceEngine(cluster, dfs).run(conf)
        assert dict(dfs.read("/out")) == {"a": 2, "b": 1}

    def test_combiner_reduces_shuffle_volume(self, cluster, dfs):
        dfs.write("/in", [(i, "a a a a b") for i in range(50)])
        engine = MapReduceEngine(cluster, dfs)
        plain = engine.run(wordcount_conf())
        combined = engine.run(
            JobConf(name="wc-c", mapper=TokenMapper, reducer=SumRed,
                    inputs=["/in"], output="/out2", num_reducers=3,
                    combiner=SumRed)
        )
        assert dict(dfs.read("/out2")) == dict(dfs.read("/out"))
        assert combined.metrics.counters.get("shuffle_bytes") < (
            plain.metrics.counters.get("shuffle_bytes")
        )


class TestIdentityPipeline:
    def test_identity_preserves_multiset(self, cluster, dfs):
        records = [(i % 5, i) for i in range(30)]
        dfs.write("/in", records)
        conf = JobConf(name="id", mapper=IdentityMapper, reducer=IdentityReducer,
                       inputs=["/in"], output="/out", num_reducers=4)
        MapReduceEngine(cluster, dfs).run(conf)
        assert sorted(dfs.read_all("/out")) == sorted(records)


class TestMetrics:
    def test_stage_times_populated(self, cluster, dfs):
        dfs.write("/in", [(i, "a b") for i in range(100)])
        result = MapReduceEngine(cluster, dfs).run(wordcount_conf())
        times = result.metrics.times
        assert times.startup == pytest.approx(cluster.cost_model.job_startup_s)
        assert times.map > 0
        assert times.shuffle > 0
        assert times.reduce > 0

    def test_charge_startup_flag(self, cluster, dfs):
        dfs.write("/in", [(0, "a")])
        result = MapReduceEngine(cluster, dfs).run(
            wordcount_conf(), charge_startup=False
        )
        assert result.metrics.times.startup == 0.0

    def test_record_counters(self, cluster, dfs):
        dfs.write("/in", [(i, "a b c") for i in range(10)])
        result = MapReduceEngine(cluster, dfs).run(wordcount_conf())
        counters = result.metrics.counters
        assert counters.get("map_input_records") == 10
        assert counters.get("map_output_records") == 30
        assert counters.get("reduce_input_records") == 30
        assert counters.get("reduce_output_records") == 3

    def test_determinism(self, dfs, cluster):
        dfs.write("/in", [(i, "a b c a") for i in range(40)])
        engine = MapReduceEngine(cluster, dfs)
        t1 = engine.run(wordcount_conf()).total_time
        t2 = engine.run(wordcount_conf()).total_time
        assert t1 == pytest.approx(t2)


class TestContext:
    def test_take_drains(self):
        ctx = Context()
        ctx.emit("a", 1)
        assert ctx.take() == [("a", 1)]
        assert ctx.take() == []

    def test_counters_available(self):
        ctx = Context()
        ctx.counters.add("seen")
        assert ctx.counters.get("seen") == 1


class TestValidation:
    def test_empty_name(self):
        conf = wordcount_conf()
        conf.name = ""
        with pytest.raises(InvalidJobConf):
            conf.validate()

    def test_no_inputs(self):
        conf = wordcount_conf()
        conf.inputs = []
        with pytest.raises(InvalidJobConf):
            conf.validate()

    def test_bad_reducer_count(self):
        conf = wordcount_conf()
        conf.num_reducers = 0
        with pytest.raises(InvalidJobConf):
            conf.validate()

    def test_non_callable_mapper(self):
        conf = wordcount_conf()
        conf.mapper = "not-a-factory"
        with pytest.raises(InvalidJobConf):
            conf.validate()


class TestLocalityAccounting:
    def test_remote_reads_counted_when_unavoidable(self):
        from tests.conftest import fresh_cluster

        # One worker holds every replica: with several workers, some map
        # tasks must read remotely or queue; either way the job finishes
        # and counters stay consistent.
        cluster, dfs = fresh_cluster(num_workers=8, seed=3)
        dfs.write("/in", [(i, "word " * 20) for i in range(200)])
        result = MapReduceEngine(cluster, dfs).run(wordcount_conf())
        assert dict(dfs.read("/out"))["word"] == 4000
