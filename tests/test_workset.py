"""Proof of workset (delta) iteration: differential equivalence with the
full-sweep engine across backends, shard counts and algorithms, plus
property tests of the frontier and its routing.

The differential harness is the exactness contract of
:mod:`repro.iterative.workset` made executable: a workset run must leave
the *same* converged state, after the *same* number of iterations, as
the default full-sweep engine — while scheduling strictly less work as
the computation converges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gimv_cc import GIMVConnectedComponents
from repro.algorithms.kmeans import Kmeans
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.common.errors import InvalidJobConf
from repro.common.hashing import partition_for
from repro.datasets.graphs import powerlaw_web_graph, weighted_graph_from
from repro.datasets.matrices import block_matrix
from repro.datasets.points import gaussian_points
from repro.iterative.api import IterativeJob
from repro.iterative.engine import IterMREngine, run_full_iteration
from repro.iterative.partitioning import partition_structure
from repro.iterative.workset import (
    PartitionRouter,
    Workset,
    WorksetRunner,
    workset_task_specs,
)
from repro.mrbgraph.sharding import HashShardRouter, RangeShardRouter

from tests.conftest import fresh_cluster


# --------------------------------------------------------------------- #
# differential harness: workset == full sweep                           #
# --------------------------------------------------------------------- #


def _pagerank_case():
    graph = powerlaw_web_graph(80, 4, seed=4)
    return PageRank(), graph, dict(max_iterations=6), "exact"


def _sssp_case():
    graph = weighted_graph_from(powerlaw_web_graph(90, 4, seed=9), seed=1)
    return SSSP(source=0), graph, dict(max_iterations=12, epsilon=0.0), "exact"


def _gimv_cc_case():
    matrix = block_matrix(num_blocks=5, block_size=6, density=0.08, seed=2)
    algorithm = GIMVConnectedComponents(block_size=6)
    return algorithm, matrix, dict(max_iterations=12, epsilon=0.0), "exact"


def _kmeans_case():
    points = gaussian_points(90, dim=3, k=3, seed=3)
    # K-means re-sums member points when clusters change; summation order
    # may differ between the edge cache and a fresh shuffle, so the
    # harness compares with a float tolerance instead of bitwise.
    return Kmeans(k=3, dim=3), points, dict(max_iterations=4), "close"


CASES = {
    "pagerank": _pagerank_case,
    "sssp": _sssp_case,
    "gimv_cc": _gimv_cc_case,
    "kmeans": _kmeans_case,
}


def _run(algorithm, dataset, num_partitions, executor, workset, knobs):
    cluster, dfs = fresh_cluster()
    return IterMREngine(cluster, dfs).run(
        IterativeJob(
            algorithm,
            dataset,
            num_partitions=num_partitions,
            executor=executor,
            workset=workset,
            **knobs,
        )
    )


class TestDifferential:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("num_partitions", [1, 4])
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_workset_equals_full_sweep(self, name, num_partitions, executor):
        algorithm, dataset, knobs, mode = CASES[name]()
        full = _run(algorithm, dataset, num_partitions, executor, False, knobs)
        ws = _run(algorithm, dataset, num_partitions, executor, True, knobs)
        assert set(ws.state) == set(full.state)
        if mode == "exact":
            assert ws.iterations == full.iterations
            assert ws.converged == full.converged
            assert ws.state == full.state
        else:
            # K-means may certify its fixpoint (empty workset) before the
            # fixed iteration budget the epsilon-less full sweep burns;
            # the converged states must still agree to float tolerance.
            assert ws.iterations <= full.iterations
            for dk in full.state:
                assert algorithm.difference(ws.state[dk], full.state[dk]) < 1e-9

    def test_full_sweep_is_the_default(self):
        algorithm, dataset, knobs, _ = _pagerank_case()
        result = _run(algorithm, dataset, 4, "serial", None, knobs)
        # workset=None defers to REPRO_WORKSET, which defaults off.
        assert result.metrics.counters.get("workset_map_tasks") == 0
        for stats in result.per_iteration:
            assert stats.scheduled_map_tasks == 4
            assert stats.scheduled_reduce_tasks == 4

    def test_env_default_enables_workset(self, monkeypatch):
        from repro.common import config

        monkeypatch.setattr(config, "DEFAULT_WORKSET", True)
        algorithm, dataset, knobs, _ = _sssp_case()
        result = _run(algorithm, dataset, 4, "serial", None, knobs)
        assert result.metrics.counters.get("workset_map_tasks") > 0
        assert result.converged

    def test_negative_workset_threshold_rejected(self):
        job = IterativeJob(
            PageRank(), powerlaw_web_graph(10, 2, seed=1),
            workset_threshold=-0.5,
        )
        with pytest.raises(InvalidJobConf):
            job.validate()


class TestCollapse:
    def test_scheduled_tasks_collapse_as_sssp_converges(self):
        algorithm, dataset, knobs, _ = _sssp_case()
        result = _run(algorithm, dataset, 4, "serial", True, knobs)
        assert result.converged
        series = [s.scheduled_map_tasks for s in result.per_iteration]
        # Superstep 0 is the priming full sweep over every partition;
        # the frontier then shrinks below the partition count before
        # the run terminates.
        assert series[0] == 4
        assert min(series) < 4
        assert result.per_iteration[-1].workset_size == 0

    def test_empty_workset_terminates_without_epsilon(self):
        algorithm, dataset, _, _ = _sssp_case()
        ws = _run(algorithm, dataset, 4, "serial", True,
                  dict(max_iterations=50))
        assert ws.converged
        assert ws.iterations < 50
        full = _run(algorithm, dataset, 4, "serial", False,
                    dict(max_iterations=50, epsilon=0.0))
        assert ws.state == full.state

    def test_touched_vertices_shrink_below_full_sweep(self):
        algorithm, dataset, knobs, _ = _sssp_case()
        result = _run(algorithm, dataset, 4, "serial", True, knobs)
        seed_touched = result.per_iteration[0].touched_vertices
        assert seed_touched > 0
        later = [s.touched_vertices for s in result.per_iteration[1:]]
        assert later and min(later) < seed_touched


# --------------------------------------------------------------------- #
# hypothesis: the frontier never drops a dirty vertex & always drains   #
# --------------------------------------------------------------------- #


def _sssp_runner(n, deg, seed, num_partitions=4):
    graph = weighted_graph_from(powerlaw_web_graph(n, deg, seed=seed),
                                seed=seed)
    algorithm = SSSP(source=0)
    cluster, _ = fresh_cluster()
    parts = partition_structure(
        algorithm, algorithm.structure_records(graph), num_partitions
    )
    state = dict(algorithm.initial_state(graph))
    return algorithm, parts, cluster, WorksetRunner(
        algorithm, parts, state, cluster
    )


class TestFrontierProperties:
    @given(
        st.integers(min_value=20, max_value=60),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=12, deadline=None)
    def test_reaches_empty_workset_fixpoint(self, n, deg, seed):
        algorithm, parts, cluster, runner = _sssp_runner(n, deg, seed)
        runner.seed()
        steps = 0
        while runner.workset:
            runner.step()
            steps += 1
            assert steps <= n + 5, "workset failed to drain"
        # An empty workset certifies the fixpoint: one more *full* sweep
        # over the final state must change nothing.
        check = run_full_iteration(algorithm, parts, dict(runner.state), cluster)
        assert check.new_state == runner.state

    @given(
        st.integers(min_value=20, max_value=50),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=10, deadline=None)
    def test_never_drops_a_dirty_vertex(self, n, deg, seed):
        algorithm, _, _, runner = _sssp_runner(n, deg, seed)
        prev = dict(runner.state)
        runner.seed()
        guard = 0
        while True:
            changed = {
                dk
                for dk, dv in runner.state.items()
                if dk not in prev or algorithm.difference(dv, prev[dk]) > 0.0
            }
            # With threshold=None every changed key must stay dirty —
            # nothing is allowed to fall out of the frontier.
            assert changed <= set(runner.workset.keys())
            if not runner.workset:
                break
            prev = dict(runner.state)
            runner.step()
            guard += 1
            assert guard <= n + 5

    def test_step_on_empty_workset_is_safe(self):
        _, _, _, runner = _sssp_runner(20, 2, 1)
        stats = runner.step()  # never seeded: frontier is empty
        assert stats.scheduled_map_tasks == 0
        assert stats.scheduled_reduce_tasks == 0
        assert stats.touched_vertices == 0
        assert not runner.workset


# --------------------------------------------------------------------- #
# routing properties: dirty vertex shard == scheduled task shard        #
# --------------------------------------------------------------------- #


@st.composite
def _homogeneous_keys(draw):
    """A set of same-typed keys (int, str, or tuple) plus that universe."""
    kind = draw(st.sampled_from(["int", "str", "tuple"]))
    if kind == "int":
        elems = st.integers(min_value=-1000, max_value=1000)
    elif kind == "str":
        elems = st.text(min_size=0, max_size=8)
    else:
        elems = st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=50),
        )
    return draw(st.sets(elems, max_size=40))


class TestRouting:
    @given(_homogeneous_keys(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_partition_map_agrees_with_hash_router(self, keys, num_shards):
        workset = Workset(keys)
        router = HashShardRouter(num_shards)
        pm = workset.partition_map(router)
        flat = [k for members in pm.values() for k in members]
        assert len(flat) == len(keys) and set(flat) == set(keys)
        for shard, members in pm.items():
            assert all(router.shard_for(k) == shard for k in members)
        specs = workset_task_specs(pm, {}, {}, "map", 0)
        assert [spec.shard_id for spec in specs] == sorted(pm)

    @given(_homogeneous_keys())
    @settings(max_examples=60, deadline=None)
    def test_partition_map_agrees_with_range_router(self, keys):
        from repro.common.kvpair import sort_key

        universe = sorted(keys, key=sort_key)
        boundaries = universe[:: max(1, len(universe) // 3)][:3]
        router = RangeShardRouter(boundaries)
        pm = Workset(keys).partition_map(router)
        flat = [k for members in pm.values() for k in members]
        assert len(flat) == len(keys) and set(flat) == set(keys)
        for shard, members in pm.items():
            assert all(router.shard_for(k) == shard for k in members)
        specs = workset_task_specs(pm, {}, {}, "reduce", 3)
        assert [spec.shard_id for spec in specs] == sorted(pm)

    @given(
        st.one_of(
            st.integers(min_value=-10000, max_value=10000),
            st.text(max_size=12),
            st.tuples(st.integers(), st.integers()),
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_router_matches_engine_partitioner(self, key, n):
        assert PartitionRouter(n).shard_for(key) == partition_for(key, n)

    def test_dirty_vertex_routes_to_its_scheduled_task(self):
        _, parts, _, runner = _sssp_runner(40, 3, 7)
        runner.seed()
        assert runner.workset
        pm = runner.workset.partition_map(runner.router)
        n = parts.num_partitions
        for dk in runner.workset.keys():
            shard = runner.router.shard_for(dk)
            assert shard == partition_for(dk, n)
            assert dk in pm[shard]
        specs = workset_task_specs(pm, {}, {}, "map", runner._iteration)
        assert sorted(pm) == [spec.shard_id for spec in specs]
