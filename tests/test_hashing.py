"""Tests for stable hashing, partitioning and Map-instance identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import map_key, partition_for, stable_hash

_keys = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.tuples(st.integers(), st.text(max_size=6)),
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))

    def test_known_types(self):
        for key in [None, True, 0, -5, 3.14, "x", b"x", (1, 2), [1, 2]]:
            assert isinstance(stable_hash(key), int)

    def test_distinct_inputs_usually_differ(self):
        hashes = {stable_hash(i) for i in range(10_000)}
        assert len(hashes) == 10_000

    def test_fits_signed_int64(self):
        for key in range(1000):
            assert 0 <= stable_hash(key) < 2**63

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash({"a": 1})

    @given(_keys)
    @settings(max_examples=200)
    def test_hash_in_range_property(self, key):
        assert 0 <= stable_hash(key) < 2**63


class TestPartitionFor:
    def test_in_range(self):
        for key in range(100):
            assert 0 <= partition_for(key, 7) < 7

    def test_reasonably_balanced(self):
        counts = [0] * 8
        for key in range(8000):
            counts[partition_for(key, 8)] += 1
        assert min(counts) > 500  # perfect balance would be 1000

    def test_string_keys_balanced(self):
        counts = [0] * 4
        for i in range(4000):
            counts[partition_for(f"word-{i}", 4)] += 1
        assert min(counts) > 700

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_for("k", 0)


class TestMapKey:
    def test_same_record_same_mk(self):
        assert map_key(1, (2, 3)) == map_key(1, (2, 3))

    def test_different_value_different_mk(self):
        assert map_key(1, (2, 3)) != map_key(1, (2, 4))

    def test_dup_index_distinguishes(self):
        assert map_key(1, "v", 0) != map_key(1, "v", 1)

    def test_mk_fits_serializable_range(self):
        from repro.common.serialization import encode

        encode(map_key("key", ("value", 1.5)))  # must not raise
