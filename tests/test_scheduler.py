"""Tests for LPT/locality task scheduling."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel
from repro.cluster.scheduler import (
    ShardPlacement,
    ShardTaskSpec,
    TaskSpec,
    parallel_time,
    schedule_shard_stage,
    schedule_stage,
)


class TestBasicScheduling:
    def test_single_task(self):
        result = schedule_stage([TaskSpec("t0", 5.0)], num_workers=4)
        assert result.elapsed_s == pytest.approx(5.0)

    def test_perfect_balance(self):
        tasks = [TaskSpec(str(i), 1.0) for i in range(8)]
        result = schedule_stage(tasks, num_workers=4)
        assert result.elapsed_s == pytest.approx(2.0)

    def test_lpt_handles_skew(self):
        tasks = [TaskSpec("big", 10.0)] + [TaskSpec(f"s{i}", 1.0) for i in range(10)]
        result = schedule_stage(tasks, num_workers=4)
        # The big task bounds the makespan; small ones pack around it.
        assert result.elapsed_s == pytest.approx(10.0)

    def test_empty_stage(self):
        assert schedule_stage([], num_workers=4).elapsed_s == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            schedule_stage([], num_workers=0)

    def test_task_overhead_added(self):
        result = schedule_stage(
            [TaskSpec("t", 1.0)], num_workers=1, task_overhead_s=0.5
        )
        assert result.elapsed_s == pytest.approx(1.5)


class TestLocality:
    def test_prefers_local_worker(self):
        tasks = [TaskSpec("t0", 1.0, preferred_workers=[2])]
        result = schedule_stage(tasks, num_workers=4)
        assert result.assignment["t0"] == 2
        assert result.locality_hits == 1

    def test_gives_up_locality_under_load(self):
        # Ten tasks all prefer worker 0; most should overflow elsewhere.
        tasks = [TaskSpec(f"t{i}", 1.0, preferred_workers=[0]) for i in range(10)]
        result = schedule_stage(tasks, num_workers=5)
        assert result.locality_misses > 0
        assert result.elapsed_s < 10.0  # not all serialized on worker 0

    def test_pinned_overrides_preference(self):
        tasks = [TaskSpec("t0", 1.0, preferred_workers=[1], pinned_worker=3)]
        result = schedule_stage(tasks, num_workers=4)
        assert result.assignment["t0"] == 3

    def test_pinned_wraps_modulo_workers(self):
        tasks = [TaskSpec("t0", 1.0, pinned_worker=10)]
        result = schedule_stage(tasks, num_workers=4)
        assert result.assignment["t0"] == 2


class TestParallelTime:
    def test_matches_schedule_stage(self):
        costs = [3.0, 1.0, 2.0, 2.0]
        assert parallel_time(costs, 2) == pytest.approx(4.0)

    def test_single_worker_sums(self):
        assert parallel_time([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_deterministic(self):
        costs = [float(i % 5 + 1) for i in range(40)]
        assert parallel_time(costs, 6) == parallel_time(costs, 6)


class TestShardPlacement:
    def test_round_robin_ownership(self):
        placement = ShardPlacement(num_shards=6, num_workers=4)
        assert [placement.owner(s) for s in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ShardPlacement(num_shards=0, num_workers=4)
        with pytest.raises(ValueError):
            ShardPlacement(num_shards=4, num_workers=0)


class TestShardScheduling:
    def test_tasks_land_on_owners(self):
        placement = ShardPlacement(num_shards=4, num_workers=4)
        tasks = [ShardTaskSpec(f"t{s}", 1.0, shard_id=s) for s in range(4)]
        result = schedule_shard_stage(tasks, placement)
        assert result.assignment == {f"t{s}": s for s in range(4)}
        assert result.locality_hits == 4
        assert result.locality_misses == 0
        assert result.elapsed_s == pytest.approx(1.0)

    def test_skewed_shard_ships_to_idle_worker(self):
        # All tasks hit shard 0; with a negligible transfer penalty the
        # scheduler ships the backlog to idle workers.
        placement = ShardPlacement(num_shards=2, num_workers=2)
        model = CostModel(net_latency_s=0.0)
        tasks = [
            ShardTaskSpec(f"t{i}", 10.0, shard_id=0, read_bytes=0)
            for i in range(4)
        ]
        result = schedule_shard_stage(tasks, placement, cost_model=model)
        assert result.locality_misses > 0
        assert result.elapsed_s < 40.0

    def test_cross_shard_transfer_charged(self):
        # Shipping is only worthwhile when the saved wait exceeds the
        # transfer; a huge shard stays on its owner.
        placement = ShardPlacement(num_shards=1, num_workers=4)
        model = CostModel()
        huge = 10 ** 12  # ~83,000 s over the simulated network
        tasks = [
            ShardTaskSpec(f"t{i}", 1.0, shard_id=0, read_bytes=huge)
            for i in range(8)
        ]
        result = schedule_shard_stage(tasks, placement, cost_model=model)
        assert result.locality_misses == 0
        assert result.elapsed_s == pytest.approx(8.0)

    def test_shipped_task_pays_penalty(self):
        placement = ShardPlacement(num_shards=1, num_workers=2)
        model = CostModel(net_latency_s=0.0)
        nbytes = int(model.net_bw)  # exactly 1 s of transfer
        tasks = [
            ShardTaskSpec(f"t{i}", 10.0, shard_id=0, read_bytes=nbytes)
            for i in range(3)
        ]
        result = schedule_shard_stage(tasks, placement, cost_model=model)
        # Two tasks queue on the owner; the third ships and pays +1 s.
        assert sorted(result.worker_loads) == pytest.approx([11.0, 20.0])
        assert result.locality_misses == 1

    def test_empty_stage(self):
        placement = ShardPlacement(num_shards=2, num_workers=2)
        result = schedule_shard_stage([], placement)
        assert result.elapsed_s == 0.0
        assert result.assignment == {}
