"""Documentation stays truthful: the docs-link check runs in the suite.

The same script CI runs (``tools/check_docs_links.py``) is executed
here, so a rename that orphans a reference in ``README.md`` or
``docs/*.md`` fails locally before it fails in CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "experiments.md").is_file()
    assert (ROOT / "docs" / "store.md").is_file()
    assert (ROOT / "docs" / "serving.md").is_file()
    assert (ROOT / "docs" / "api.md").is_file()


def test_no_tracked_pycache():
    """Compiled bytecode must never be tracked under ``src/`` (CI gate)."""
    proc = subprocess.run(
        ["git", "ls-files", "--", "src"],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    if proc.returncode != 0:
        pytest.skip("not a git checkout")
    offenders = [
        line
        for line in proc.stdout.splitlines()
        if "__pycache__" in line or line.endswith(".pyc")
    ]
    assert offenders == [], f"tracked bytecode under src/: {offenders}"


def test_docs_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_readme_names_real_commands():
    """The README's test command must match ROADMAP's tier-1 line."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme
    assert "pip install -e ." in readme


def test_readme_documents_env_knobs():
    """Every REPRO_* knob read by the library is documented in README."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for knob in (
        "REPRO_EXECUTOR",
        "REPRO_MAX_WORKERS",
        "REPRO_APPEND_BUFFER_SIZE",
        "REPRO_PREFETCH_LOOKAHEAD",
        "REPRO_SHARDS",
        "REPRO_WAL",
        "REPRO_COMPACTION",
        "REPRO_TASK_RETRIES",
        "REPRO_TASK_TIMEOUT",
        "REPRO_SPECULATION",
        "REPRO_BLACKLIST_AFTER",
        "REPRO_CHAOS_SEED",
        "REPRO_CHAOS_RATE",
        "REPRO_WORKSET",
        "REPRO_BENCH_SCALE",
        "REPRO_BENCH_WRITE",
        "REPRO_SERVING_CACHE",
        "REPRO_SERVING_RETAIN",
        "REPRO_SERVING_TOPK",
        "REPRO_SERVING_TIMEOUT",
    ):
        assert knob in readme, f"{knob} missing from README.md"


def test_architecture_covers_fault_tolerance():
    """The resilience subsystem has its architecture section."""
    arch = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "## Fault tolerance & recovery" in arch
    for term in (
        "ResilientExecutor",
        "RetryPolicy",
        "sim_backoff_s",
        "degradation ladder",
        "dead-letter",
        "REPRO_CHAOS_SEED",
    ):
        assert term in arch


def test_architecture_covers_streaming():
    """The streaming subsystem has its architecture section."""
    arch = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "## Streaming & continuous pipelines" in arch
    for term in ("DeltaSource", "BatchPolicy", "ContinuousPipeline", "backlog"):
        assert term in arch


def test_architecture_covers_workset():
    """Workset (delta) iteration has its architecture section."""
    arch = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "## Workset & delta iteration" in arch
    for term in (
        "Workset",
        "PartitionRouter",
        "empty workset",
        "REPRO_WORKSET",
        "net_delta_records",
        "BENCH_workset.json",
    ):
        assert term in arch


def test_experiments_registry_covers_stream_latency():
    experiments = (ROOT / "docs" / "experiments.md").read_text(encoding="utf-8")
    assert "stream_latency.py" in experiments


def test_experiments_documents_stream_latency_columns():
    """Every stream_latency output column is explained in the docs."""
    experiments = (ROOT / "docs" / "experiments.md").read_text(encoding="utf-8")
    for column in (
        "workload",
        "policy",
        "batches",
        "mean_batch",
        "mean_lat_s",
        "max_lat_s",
        "max_backlog",
        "fallback_batches",
    ):
        assert column in experiments, f"{column} not documented"


def test_store_doc_covers_sharding():
    """docs/store.md explains the store layer end to end."""
    store = (ROOT / "docs" / "store.md").read_text(encoding="utf-8")
    for term in (
        "mrbg.dat",
        "mrbg.idx",
        "mrbg.shards",
        "ShardedMRBGStore",
        "ShardRouter",
        "compact",
        "mrbgstore_tour.py",
    ):
        assert term in store, f"{term} missing from docs/store.md"


def test_store_doc_covers_durability():
    """docs/store.md documents the WAL, recovery and compaction knobs."""
    store = (ROOT / "docs" / "store.md").read_text(encoding="utf-8")
    assert "## Durability & recovery" in store
    for term in (
        "mrbg.wal",
        "wal_records.json",
        "wal-append",
        "pre-index-swap",
        "mid-compact-write",
        "post-compact-pre-swap",
        "size-tiered",
        "leveled",
        "--runslow",
    ):
        assert term in store, f"{term} missing from docs/store.md"


def test_serving_doc_covers_the_contract():
    """docs/serving.md explains epochs, query APIs and invalidation."""
    serving = (ROOT / "docs" / "serving.md").read_text(encoding="utf-8")
    assert "## Epoch lifecycle" in serving
    assert "## Query APIs" in serving
    assert "## Cache-invalidation contract" in serving
    for term in (
        "EpochManager",
        "EpochSnapshot",
        "QueryServer",
        "ServingBridge",
        "ResultCache",
        "pinned",
        "touched",
        "top_k",
        "QueryTimeout",
        "EpochRetired",
        "serving_pagerank.py",
    ):
        assert term in serving, f"{term} missing from docs/serving.md"


def test_experiments_documents_serving_bench():
    """The serving benchmark and its report columns are documented."""
    experiments = (ROOT / "docs" / "experiments.md").read_text(encoding="utf-8")
    assert "test_bench_serving.py" in experiments
    for column in (
        "qps",
        "p50_ms",
        "p99_ms",
        "cache_hit_rate",
        "epochs_served",
        "BENCH_serving.json",
    ):
        assert column in experiments, f"{column} not documented"


def test_api_reference_is_fresh():
    """docs/api.md matches a fresh render of the docstrings (CI gate)."""
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
