"""Documentation stays truthful: the docs-link check runs in the suite.

The same script CI runs (``tools/check_docs_links.py``) is executed
here, so a rename that orphans a reference in ``README.md`` or
``docs/*.md`` fails locally before it fails in CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "experiments.md").is_file()


def test_docs_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_readme_names_real_commands():
    """The README's test command must match ROADMAP's tier-1 line."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme
    assert "pip install -e ." in readme


def test_readme_documents_env_knobs():
    """Every REPRO_* knob read by the library is documented in README."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for knob in (
        "REPRO_EXECUTOR",
        "REPRO_MAX_WORKERS",
        "REPRO_APPEND_BUFFER_SIZE",
        "REPRO_PREFETCH_LOOKAHEAD",
        "REPRO_BENCH_SCALE",
    ):
        assert knob in readme, f"{knob} missing from README.md"


def test_architecture_covers_streaming():
    """The streaming subsystem has its architecture section."""
    arch = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "## Streaming & continuous pipelines" in arch
    for term in ("DeltaSource", "BatchPolicy", "ContinuousPipeline", "backlog"):
        assert term in arch


def test_experiments_registry_covers_stream_latency():
    experiments = (ROOT / "docs" / "experiments.md").read_text(encoding="utf-8")
    assert "stream_latency.py" in experiments
