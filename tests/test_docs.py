"""Documentation stays truthful: the docs-link check runs in the suite.

The same script CI runs (``tools/check_docs_links.py``) is executed
here, so a rename that orphans a reference in ``README.md`` or
``docs/*.md`` fails locally before it fails in CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "experiments.md").is_file()


def test_docs_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_readme_names_real_commands():
    """The README's test command must match ROADMAP's tier-1 line."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme
    assert "pip install -e ." in readme
