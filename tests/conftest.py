"""Shared fixtures for the test suite.

Everything is deterministic: clusters are seeded, datasets are seeded,
and simulated time is pure arithmetic — a test that passes once passes
always.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.dfs.filesystem import DistributedFS


@pytest.fixture
def cluster() -> Cluster:
    """A small deterministic cluster."""
    return Cluster(num_workers=4, seed=7)


@pytest.fixture
def dfs(cluster: Cluster) -> DistributedFS:
    """A DFS with small blocks so inputs split into several map tasks."""
    return DistributedFS(cluster, block_size=4 * 1024)


@pytest.fixture
def big_block_dfs(cluster: Cluster) -> DistributedFS:
    """A DFS with large blocks (single map task per small file)."""
    return DistributedFS(cluster, block_size=64 * 1024 * 1024)


def fresh_cluster(num_workers: int = 4, seed: int = 7, **cost_overrides):
    """Non-fixture helper for tests needing several isolated clusters."""
    cost = CostModel().scaled(**cost_overrides) if cost_overrides else CostModel()
    cluster = Cluster(num_workers=num_workers, cost_model=cost, seed=seed)
    return cluster, DistributedFS(cluster, block_size=16 * 1024)
