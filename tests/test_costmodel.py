"""Tests for the cost model, including data-scale calibration semantics."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel, zero_overhead_model


class TestBasicCharges:
    def test_disk_read_includes_seek(self):
        cost = CostModel()
        assert cost.disk_read_time(0) == pytest.approx(cost.disk_seek_s)
        assert cost.disk_read_time(1200) > cost.disk_read_time(0)

    def test_multi_seek(self):
        cost = CostModel()
        assert cost.disk_read_time(0, seeks=3) == pytest.approx(3 * cost.disk_seek_s)

    def test_write_slower_than_read(self):
        cost = CostModel()
        nbytes = 10**8
        assert cost.disk_write_time(nbytes) > cost.disk_read_time(nbytes)

    def test_net_latency_per_transfer(self):
        cost = CostModel()
        assert cost.net_time(0, transfers=5) == pytest.approx(5 * cost.net_latency_s)

    def test_cpu_weight_scales(self):
        cost = CostModel()
        assert cost.cpu_time(100, weight=2.0) == pytest.approx(2 * cost.cpu_time(100))

    def test_sort_time_zero_for_trivial(self):
        cost = CostModel()
        assert cost.sort_time(0) == 0.0
        assert cost.sort_time(1) == 0.0
        assert cost.sort_time(100) > 0.0

    def test_sort_superlinear(self):
        cost = CostModel()
        assert cost.sort_time(2000) > 2 * cost.sort_time(1000)


class TestDataScale:
    def test_volume_charges_scale(self):
        base = CostModel()
        scaled = CostModel(data_scale=100.0)
        nbytes = 10**6
        # Bytes, CPU, parse and sort all inflate by the factor...
        assert scaled.parse_time(nbytes) == pytest.approx(100 * base.parse_time(nbytes))
        assert scaled.cpu_time(500) == pytest.approx(100 * base.cpu_time(500))
        assert scaled.sort_time(500) == pytest.approx(100 * base.sort_time(500))

    def test_fixed_costs_do_not_scale(self):
        base = CostModel()
        scaled = CostModel(data_scale=100.0)
        # ...while per-operation costs stay put.
        assert scaled.disk_read_time(0) == pytest.approx(base.disk_read_time(0))
        assert scaled.net_time(0) == pytest.approx(base.net_time(0))
        assert scaled.job_startup_s == base.job_startup_s

    def test_unscaled_view(self):
        scaled = CostModel(data_scale=50.0)
        unscaled = scaled.unscaled()
        assert unscaled.data_scale == 1.0
        assert unscaled.disk_read_bw == scaled.disk_read_bw

    def test_unscaled_is_identity_at_one(self):
        base = CostModel()
        assert base.unscaled() is base


class TestStoreCharges:
    def test_store_read_cheaper_than_random_seek(self):
        cost = CostModel()
        assert cost.store_read_time(0) < cost.disk_read_time(0)

    def test_store_charges_never_data_scaled(self):
        base = CostModel()
        scaled = CostModel(data_scale=1000.0)
        assert scaled.store_read_time(10**6) == pytest.approx(
            base.store_read_time(10**6)
        )


class TestOverrides:
    def test_scaled_returns_new_instance(self):
        cost = CostModel()
        faster = cost.scaled(net_bw=1e9)
        assert faster.net_bw == 1e9
        assert cost.net_bw != 1e9

    def test_zero_overhead_model(self):
        cost = zero_overhead_model()
        assert cost.job_startup_s == 0.0
        assert cost.disk_read_time(0) == 0.0
        assert cost.net_time(0) == 0.0
