#!/usr/bin/env python3
"""Serving PageRank: online queries while the crawl keeps ingesting.

``examples/streaming_pagerank.py`` keeps the ranks fresh; this example
puts a front door on them.  A streaming PageRank pipeline ingests
crawler deltas on a background thread and publishes an epoch per
committed micro-batch (:class:`~repro.serving.ServingBridge`), while
the main thread plays "user traffic": point lookups, an incrementally
maintained top-10, and range scans — every query pinned to a consistent
epoch, answered through the delta-invalidated result cache, and charged
simulated read costs through the cost model.

Run:  python examples/serving_pagerank.py
"""

import threading

from repro import (
    Cluster,
    ContinuousPipeline,
    CountBatcher,
    DistributedFS,
    EpochManager,
    I2MROptions,
    IterativeJob,
    PageRank,
    QueryServer,
    ReplaySource,
    ServingBridge,
)
from repro.datasets import mutate_web_graph, powerlaw_web_graph
from repro.streaming import IterativeStreamConsumer


def main() -> None:
    graph = powerlaw_web_graph(num_vertices=800, avg_out_degree=6, seed=42)
    cluster = Cluster(num_workers=8)
    dfs = DistributedFS(cluster, block_size=64 * 1024)

    # Initial crawl: converge once and preserve state + MRBGraph.
    job = IterativeJob(PageRank(damping=0.8), graph, num_partitions=4,
                       max_iterations=50, epsilon=1e-6)
    consumer = IterativeStreamConsumer.from_initial(
        cluster, dfs, job,
        I2MROptions(filter_threshold=0.001, max_iterations=30),
    )
    print(f"initial crawl converged over {graph.num_vertices} pages")

    # The "crawler": three refreshes recorded as one replayable stream.
    records = []
    for refresh in range(3):
        delta = mutate_web_graph(graph, fraction=0.03, seed=100 + refresh)
        graph = delta.new_graph
        records.extend(delta.records)

    # The front door: 4 serving shards, every epoch retained for the demo.
    server = QueryServer(
        manager=EpochManager(num_shards=4, retain=1000, track_top=10)
    )
    server.publish(consumer.state())  # epoch 0 = the initial ranks
    pipe = ContinuousPipeline(
        ReplaySource(records, rate=5.0), CountBatcher(40), consumer
    )
    pipe.add_batch_listener(ServingBridge(server))

    watched = sorted(consumer.state())[:3]
    with pipe:
        ingest = threading.Thread(target=pipe.run)
        ingest.start()

        # User traffic, concurrent with ingestion.  Each answer names
        # the epoch it was pinned to — never a half-applied batch.
        seen = []
        while ingest.is_alive() or not seen:
            top = server.top_k(10)
            probes = {page: server.get(page).value for page in watched}
            if top.epoch not in seen:  # narrate each epoch once
                seen.append(top.epoch)
                print(f"epoch {top.epoch:2d}: top page {top.value[0][0]} "
                      f"(rank {top.value[0][1]:.4f}), probes "
                      f"{[round(probes[p], 4) for p in watched]}")
        ingest.join()

        # Quiesced: re-ask an early epoch — pinned history still answers.
        first = min(seen)
        replayed = server.top_k(10, epoch=first)
        print(f"\nre-asked epoch {first}: top page still "
              f"{replayed.value[0][0]} (rank {replayed.value[0][1]:.4f})")

        lo, hi = watched[0], watched[-1]
        span = server.range_scan(lo, hi)
        print(f"range [{lo}, {hi}] -> {len(span.value)} pages at "
              f"epoch {span.epoch} "
              f"(simulated read cost {span.cost_s * 1e3:.3f} ms)")

        stats, cache = server.stats, server.cache.stats
        print(f"\nserved {stats.queries} queries across "
              f"{stats.num_epochs_served} epochs, cache hit rate "
              f"{cache.hit_rate:.0%} ({cache.invalidations} entries "
              f"delta-invalidated), simulated read time "
              f"{stats.sim_read_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
