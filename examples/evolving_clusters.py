#!/usr/bin/env python3
"""Kmeans over an evolving point population — the P∆ auto-off in action.

Kmeans has an all-to-one dependency: every point's Map instance reads the
single state kv-pair holding all centroids, so *any* input change moves
every centroid and the delta-state proportion hits P∆ = 100 %.  Per §5.2
the engine detects this and automatically turns off MRBGraph maintenance,
falling back to the iterative engine — which is exactly what you will see
printed below.

Run:  python examples/evolving_clusters.py
"""

from repro import Cluster, DistributedFS, I2MREngine, I2MROptions, IterativeJob, Kmeans
from repro.datasets import gaussian_points, mutate_points


def main() -> None:
    points = gaussian_points(num_points=2000, dim=6, k=6, seed=11)
    algorithm = Kmeans(k=6, dim=6)

    cluster = Cluster(num_workers=8)
    dfs = DistributedFS(cluster, block_size=64 * 1024)
    engine = I2MREngine(cluster, dfs)

    job = IterativeJob(algorithm, points, num_partitions=8,
                       max_iterations=30, epsilon=1e-4)
    initial, preserved = engine.run_initial(job)
    centroids = dict(preserved.state[1])
    print(
        f"initial clustering: {initial.iterations} iterations, "
        f"{len(centroids)} centroids, {initial.total_time:.1f} simulated s"
    )

    centroids_before = preserved.state[1]
    delta = mutate_points(points, fraction=0.10, seed=21)
    print(f"\n{len(delta.records)} point changes arrive "
          f"({delta.new_dataset.num_points} points now)")

    result = engine.run_incremental(
        IterativeJob(algorithm, delta.new_dataset, num_partitions=8,
                     max_iterations=20),
        delta.records,
        preserved,
        I2MROptions(max_iterations=20, epsilon=1e-4),
    )
    print(
        f"refresh: {result.iterations} iterations, "
        f"{result.total_time:.1f} simulated s"
    )
    if result.fell_back:
        print(
            f"MRBGraph maintenance auto-disabled at iteration "
            f"{result.mrbg_disabled_at} (P∆ exceeded 50 %) — the engine "
            "fell back to iterMR-style recomputation from the converged "
            "centroids, as §5.2 prescribes for Kmeans"
        )

    moved = algorithm.difference(result.state[1], centroids_before)
    print(f"max centroid movement after refresh: {moved:.4f}")

    preserved.cleanup()


if __name__ == "__main__":
    main()
