#!/usr/bin/env python3
"""Quickstart: incremental WordCount with the accumulator Reduce (§3.5).

WordCount's integer-sum Reduce satisfies the distributive property
``f(D ∪ ∆D) = f(D) ⊕ f(∆D)``, so i2MapReduce preserves only the Reduce
outputs and folds newly arrived documents in with ``accumulate`` — no
MRBGraph needed.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    DistributedFS,
    IncrMREngine,
    JobConf,
    Mapper,
    MapReduceEngine,
    SumReducer,
    delta_to_dfs_records,
    insert,
)


class TokenMapper(Mapper):
    """Emit ``(word, 1)`` per token."""

    def map(self, key, text, ctx):
        for word in text.split():
            ctx.emit(word, 1)


def main() -> None:
    cluster = Cluster(num_workers=4)
    dfs = DistributedFS(cluster, block_size=4096)

    documents = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the fox jumps over the dog"),
    ]
    dfs.write("/docs", documents)

    engine = IncrMREngine(cluster, dfs)
    conf = JobConf(
        name="wordcount",
        mapper=TokenMapper,
        reducer=SumReducer,
        inputs=["/docs"],
        output="/counts",
        num_reducers=2,
    )

    # Initial run: a normal MapReduce job that also preserves its outputs.
    initial, state = engine.run_initial(conf, accumulator=True)
    print("initial counts:", dict(dfs.read("/counts")))
    print(f"initial simulated time: {initial.total_time:.1f} s")

    # New documents arrive: an insert-only delta.
    delta = [insert(3, "the quick dog barks"), insert(4, "fox and dog")]
    dfs.write("/docs-delta", delta_to_dfs_records(delta))
    incremental = engine.run_incremental(conf, "/docs-delta", state)
    print("refreshed counts:", dict(dfs.read("/counts")))
    print(f"incremental simulated time: {incremental.total_time:.1f} s")

    # The refreshed output is logically identical to recomputing from
    # scratch (§3.1) — verify it.
    cluster2 = Cluster(num_workers=4)
    dfs2 = DistributedFS(cluster2, block_size=4096)
    dfs2.write("/docs", documents + [(3, "the quick dog barks"), (4, "fox and dog")])
    MapReduceEngine(cluster2, dfs2).run(
        JobConf(
            name="wordcount-scratch",
            mapper=TokenMapper,
            reducer=SumReducer,
            inputs=["/docs"],
            output="/counts",
            num_reducers=2,
        )
    )
    assert dict(dfs.read("/counts")) == dict(dfs2.read("/counts"))
    print("incremental result == from-scratch result  ✓")

    state.cleanup()


if __name__ == "__main__":
    main()
