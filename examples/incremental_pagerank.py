#!/usr/bin/env python3
"""Incremental PageRank over an evolving web graph (§5, the paper's
motivating scenario).

A web crawl is refreshed three times; each refresh changes ~5 % of the
pages.  Instead of recomputing PageRank from scratch each time,
i2MapReduce starts from the previously converged ranks and the preserved
MRBGraph, processes only the delta, and uses change propagation control
to stop refreshing pages whose ranks barely move.

Run:  python examples/incremental_pagerank.py
"""

from repro import Cluster, DistributedFS, I2MREngine, I2MROptions, IterativeJob, PageRank
from repro.datasets import mutate_web_graph, powerlaw_web_graph


def main() -> None:
    graph = powerlaw_web_graph(num_vertices=2000, avg_out_degree=8, seed=42)
    algorithm = PageRank(damping=0.8)

    cluster = Cluster(num_workers=8)
    dfs = DistributedFS(cluster, block_size=64 * 1024)
    engine = I2MREngine(cluster, dfs)

    job = IterativeJob(algorithm, graph, num_partitions=8,
                       max_iterations=50, epsilon=1e-6)
    initial, preserved = engine.run_initial(job)
    print(
        f"initial crawl: converged in {initial.iterations} iterations, "
        f"{initial.total_time:.1f} simulated s"
    )

    for generation in range(1, 4):
        delta = mutate_web_graph(graph, fraction=0.05, seed=100 + generation)
        graph = delta.new_graph
        print(
            f"\nrefresh {generation}: {len(delta.records)} changed records "
            f"({graph.num_vertices} pages)"
        )
        result = engine.run_incremental(
            IterativeJob(algorithm, graph, num_partitions=8, max_iterations=30),
            delta.records,
            preserved,
            I2MROptions(filter_threshold=0.001, max_iterations=30),
        )
        top = sorted(result.state.items(), key=lambda kv: -kv[1])[:5]
        print(
            f"  refreshed in {result.iterations} iterations, "
            f"{result.total_time:.1f} simulated s "
            f"(converged={result.converged})"
        )
        print("  top pages:", [(v, round(r, 3)) for v, r in top])
        per_iter = [s.propagated_kv_pairs for s in result.per_iteration]
        print("  propagated kv-pairs per iteration:", per_iter)

    # The preserved MRBGraph file accumulated one sorted batch per
    # iteration; compact it offline, as an idle worker would (§3.4).
    before = sum(s.file_size for s in preserved.stores.stores.values())
    preserved.stores.compact_all()
    after = sum(s.file_size for s in preserved.stores.stores.values())
    print(f"\noffline compaction: MRBGraph files {before} -> {after} bytes")

    preserved.cleanup()


if __name__ == "__main__":
    main()
