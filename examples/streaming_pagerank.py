#!/usr/bin/env python3
"""Streaming PageRank: a continuous pipeline over an evolving web crawl.

Where ``examples/incremental_pagerank.py`` refreshes ranks once per
hand-built delta, this example runs PageRank as a *service*: a crawler
keeps dropping delta files into the DFS, a tailing source picks them
up, a backpressure batcher sizes the micro-batches, and the
:class:`~repro.streaming.ContinuousPipeline` keeps the converged state
and the MRBG-Store fresh batch after batch.  Per-batch latency and
backlog come out in simulated seconds, so the run is reproducible.

Run:  python examples/streaming_pagerank.py
"""

from repro import (
    BackpressureBatcher,
    Cluster,
    ContinuousPipeline,
    DFSTailSource,
    DistributedFS,
    I2MROptions,
    IterativeJob,
    PageRank,
)
from repro.datasets import mutate_web_graph, powerlaw_web_graph
from repro.incremental import delta_to_dfs_records
from repro.streaming import IterativeStreamConsumer


def main() -> None:
    graph = powerlaw_web_graph(num_vertices=2000, avg_out_degree=8, seed=42)
    cluster = Cluster(num_workers=8)
    dfs = DistributedFS(cluster, block_size=64 * 1024)

    # Initial crawl: converge once and preserve state + MRBGraph.
    job = IterativeJob(PageRank(damping=0.8), graph, num_partitions=8,
                       max_iterations=50, epsilon=1e-6)
    consumer = IterativeStreamConsumer.from_initial(
        cluster, dfs, job,
        I2MROptions(filter_threshold=0.001, max_iterations=30),
    )
    print(f"initial crawl converged over {graph.num_vertices} pages")

    # The "crawler": six refreshes, each dropped as a DFS delta file.
    for refresh in range(6):
        delta = mutate_web_graph(graph, fraction=0.03, seed=100 + refresh)
        graph = delta.new_graph
        dfs.write(f"/crawl/delta-{refresh:04d}",
                  delta_to_dfs_records(delta.records))
    print(f"crawler wrote 6 delta files under /crawl/ "
          f"({graph.num_vertices} pages now)")

    # The pipeline: tail /crawl/, batch under backpressure, refresh ranks.
    source = DFSTailSource(dfs, "/crawl/", period_s=120.0)
    policy = BackpressureBatcher(min_records=8, max_records=512, high_water=32)
    with ContinuousPipeline(source, policy, consumer) as pipe:
        result = pipe.run()

        print(f"\nprocessed {result.num_records} delta records in "
              f"{result.num_batches} micro-batches")
        print("batch  records  wait_s  proc_s  latency_s  backlog")
        for b in result.batches:
            print(f"{b.index:5d}  {b.num_records:7d}  {b.wait_s:6.1f}  "
                  f"{b.processing_s:6.1f}  {b.latency_s:9.1f}  "
                  f"{b.backlog_records:7d}")
        print(f"\nmean latency {result.mean_latency_s:.1f}s, "
              f"max backlog {result.max_backlog} records, "
              f"throughput {result.throughput_records_per_s:.2f} rec/s")

        top = sorted(consumer.state().items(), key=lambda kv: -kv[1])[:5]
        print("top pages:", [(v, round(r, 3)) for v, r in top])


if __name__ == "__main__":
    main()
