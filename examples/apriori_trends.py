#!/usr/bin/env python3
"""APriori word-pair trends over a growing tweet stream (§8.2).

Mines co-occurring word pairs from tweets, then refreshes the counts as a
week of new tweets arrives (an insert-only delta, 7.9 % of the input like
the paper's).  The accumulator Reduce makes the refresh cost proportional
to the delta, not the corpus.

Run:  python examples/apriori_trends.py
"""

from repro import APriori, Cluster, CostModel, DistributedFS, IncrMREngine, delta_to_dfs_records
from repro.datasets import new_tweets, zipf_tweets


def main() -> None:
    dataset = zipf_tweets(num_tweets=4000, vocab_size=400, seed=5)
    apriori = APriori(dataset)

    # data_scale calibrates simulated time to the paper's 52M-tweet crawl
    # (see repro.cluster.costmodel) so data costs dominate job startup.
    cost = CostModel(data_scale=52_233_372 / dataset.num_tweets)
    cluster = Cluster(num_workers=8, cost_model=cost)
    dfs = DistributedFS(cluster, block_size=64 * 1024)
    engine = IncrMREngine(cluster, dfs)

    dfs.write("/tweets", sorted(dataset.tweets.items()))
    conf = apriori.jobconf(["/tweets"], "/pair-counts", num_reducers=8)
    initial, state = engine.run_initial(conf, accumulator=True)

    counts = dict(dfs.read("/pair-counts"))
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"initial mining of {dataset.num_tweets} tweets "
          f"({initial.total_time:.1f} simulated s)")
    print("top pairs:", top)

    # A week of new tweets arrives.
    delta = new_tweets(dataset, fraction=0.079, seed=6)
    dfs.write("/tweets-delta", delta_to_dfs_records(delta.records))
    incremental = engine.run_incremental(conf, "/tweets-delta", state)

    counts = dict(dfs.read("/pair-counts"))
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"\nafter {len(delta.records)} new tweets "
          f"({incremental.total_time:.1f} simulated s — "
          f"{initial.total_time / incremental.total_time:.1f}x faster than "
          "the initial run)")
    print("top pairs:", top)

    # Verify against an exact recount of the full corpus.
    exact = apriori.reference_counts(delta.new_dataset.tweets)
    assert counts == exact, "incremental counts must equal exact recount"
    print("\nincremental counts == exact recount  ✓")

    state.cleanup()


if __name__ == "__main__":
    main()
