#!/usr/bin/env python3
"""A tour of the MRBG-Store (§3.4, §5.2): the on-disk engine that makes
fine-grain incremental processing affordable.

Builds a store, applies a delta merge, inspects the multi-batch file
layout, compares the four read-window policies on the same access
pattern, runs an offline compaction — then replays the workload on a
sharded store to show parallel maintenance and locality-aware placement
(docs/store.md walks through the output).

Run:  python examples/mrbgstore_tour.py
"""

import shutil
import tempfile

from repro.common.kvpair import Op
from repro.mrbgraph import (
    DeltaEdge,
    Edge,
    IndexOnlyPolicy,
    MRBGStore,
    MultiDynamicWindowPolicy,
    MultiFixedWindowPolicy,
    ShardedMRBGStore,
    SingleFixedWindowPolicy,
)


def build_store(directory, policy):
    """A store holding 2000 chunks, then three delta-merge batches."""
    store = MRBGStore(directory, policy=policy)
    store.build(
        (k2, [Edge(mk, float(k2 + mk)) for mk in range(4)])
        for k2 in range(2000)
    )
    for generation in range(1, 4):
        delta = [
            (k2, [DeltaEdge(0, float(generation), Op.INSERT)])
            for k2 in range(0, 2000, 3 + generation)
        ]
        for _ in store.merge_delta(delta):
            pass
    return store


def sharded_tour() -> None:
    """The same workload across 4 shards: parallel maintenance."""
    directory = tempfile.mkdtemp(prefix="mrbg-sharded-")
    store = ShardedMRBGStore(directory, num_shards=4, executor="thread")
    store.build(
        (k2, [Edge(mk, float(k2 + mk)) for mk in range(4)])
        for k2 in range(2000)
    )
    for generation in range(1, 4):
        delta = [
            (k2, [DeltaEdge(0, float(generation), Op.INSERT)])
            for k2 in range(0, 2000, 3 + generation)
        ]
        for _ in store.merge_delta(delta):
            pass

    m = store.metrics
    print(
        f"sharded store ({store.num_shards} shards, router "
        f"{store.router.kind!r}): {len(store)} chunks, "
        f"file {store.file_size} bytes, merged metrics: "
        f"{m.io_reads} reads / {m.io_writes} writes"
    )
    per_shard = ", ".join(
        f"shard {sid}: {len(shard)} chunks"
        for sid, shard in enumerate(store.shards)
    )
    print(f"  chunk balance: {per_shard}")

    schedule = store.compact()  # all shards compact in parallel
    print(
        f"  parallel compaction: stage elapsed {schedule.elapsed_s:.4f} "
        f"simulated s, locality {schedule.locality_hits} hits / "
        f"{schedule.locality_misses} misses"
    )
    for task_id, worker in sorted(schedule.assignment.items()):
        print(f"    {task_id} -> worker {worker}")
    store.close()
    shutil.rmtree(directory, ignore_errors=True)


def main() -> None:
    policies = [
        ("index-only", IndexOnlyPolicy()),
        ("single-fix-window", SingleFixedWindowPolicy(window_size=64 * 1024)),
        ("multi-fix-window", MultiFixedWindowPolicy(window_size=32 * 1024)),
        ("multi-dynamic-window", MultiDynamicWindowPolicy()),
    ]
    print(f"{'policy':22} {'reads':>7} {'bytes read':>12} {'cache hits':>11}")
    for name, policy in policies:
        directory = tempfile.mkdtemp(prefix=f"mrbg-{name}-")
        store = build_store(directory, policy)
        store.metrics.reset()

        # Query every third chunk, in sorted order (the shuffle guarantees
        # sorted access, which is what the windows exploit).
        keys = list(range(0, 2000, 3))
        store.begin_merge(keys)
        for k2 in keys:
            store.get_chunk(k2)
        store.end_merge()
        m = store.metrics
        print(f"{name:22} {m.io_reads:>7} {m.bytes_read:>12} {m.cache_hits:>11}")

        if name == "multi-dynamic-window":
            print(
                f"\n  multi-batch layout: {store.num_batches} sorted batches, "
                f"file {store.file_size} bytes, live {store.live_bytes()} bytes"
            )
            store.compact()
            print(
                f"  after offline compaction: {store.num_batches} batch, "
                f"file {store.file_size} bytes\n"
            )
        store.close()
        shutil.rmtree(directory, ignore_errors=True)

    sharded_tour()


if __name__ == "__main__":
    main()
